//! The fifteen model architectures of the paper's Table 1.

use dx_nn::init::Init;
use dx_nn::layer::{Conv2d, Layer};
use dx_nn::network::Network;

/// Which dataset a model belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MNIST-like digits, `[1, 28, 28]`.
    Mnist,
    /// ImageNet-like colour images, `[3, 32, 32]`.
    Imagenet,
    /// Driving frames, `[1, 32, 64]` (regression).
    Driving,
    /// PDF features, `[135]`.
    Pdf,
    /// Drebin features, `[1200]`.
    Drebin,
}

impl DatasetKind {
    /// All five, in the paper's Table 1 order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Mnist,
        DatasetKind::Imagenet,
        DatasetKind::Driving,
        DatasetKind::Pdf,
        DatasetKind::Drebin,
    ];

    /// Short id used in cache filenames and bench output.
    pub fn id(self) -> &'static str {
        match self {
            DatasetKind::Mnist => "mnist",
            DatasetKind::Imagenet => "imagenet",
            DatasetKind::Driving => "driving",
            DatasetKind::Pdf => "pdf",
            DatasetKind::Drebin => "drebin",
        }
    }

    /// Whether models on this dataset are regressors.
    pub fn is_regression(self) -> bool {
        matches!(self, DatasetKind::Driving)
    }

    /// Model input shape (without batch).
    pub fn input_shape(self) -> Vec<usize> {
        match self {
            DatasetKind::Mnist => vec![1, 28, 28],
            DatasetKind::Imagenet => vec![3, 32, 32],
            DatasetKind::Driving => vec![1, 32, 64],
            DatasetKind::Pdf => vec![135],
            DatasetKind::Drebin => vec![1200],
        }
    }
}

/// One entry of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct ModelSpec {
    /// Paper id, e.g. `"MNI_C1"`.
    pub id: &'static str,
    /// Architecture name, e.g. `"LeNet-1"`.
    pub arch: &'static str,
    /// Dataset the model is trained on.
    pub dataset: DatasetKind,
    /// Index within the dataset's trio (0, 1, 2).
    pub index: usize,
}

/// The fifteen model specs, in Table 1 order.
pub const SPECS: [ModelSpec; 15] = [
    ModelSpec { id: "MNI_C1", arch: "LeNet-1", dataset: DatasetKind::Mnist, index: 0 },
    ModelSpec { id: "MNI_C2", arch: "LeNet-4", dataset: DatasetKind::Mnist, index: 1 },
    ModelSpec { id: "MNI_C3", arch: "LeNet-5", dataset: DatasetKind::Mnist, index: 2 },
    ModelSpec { id: "IMG_C1", arch: "VGG-Mini-16", dataset: DatasetKind::Imagenet, index: 0 },
    ModelSpec { id: "IMG_C2", arch: "VGG-Mini-19", dataset: DatasetKind::Imagenet, index: 1 },
    ModelSpec { id: "IMG_C3", arch: "ResNet-Mini", dataset: DatasetKind::Imagenet, index: 2 },
    ModelSpec { id: "DRV_C1", arch: "DAVE-Orig", dataset: DatasetKind::Driving, index: 0 },
    ModelSpec { id: "DRV_C2", arch: "DAVE-NormInit", dataset: DatasetKind::Driving, index: 1 },
    ModelSpec { id: "DRV_C3", arch: "DAVE-Dropout", dataset: DatasetKind::Driving, index: 2 },
    ModelSpec { id: "PDF_C1", arch: "<200, 200>", dataset: DatasetKind::Pdf, index: 0 },
    ModelSpec { id: "PDF_C2", arch: "<200, 200, 200>", dataset: DatasetKind::Pdf, index: 1 },
    ModelSpec { id: "PDF_C3", arch: "<200, 200, 200, 200>", dataset: DatasetKind::Pdf, index: 2 },
    ModelSpec { id: "APP_C1", arch: "<200, 200>", dataset: DatasetKind::Drebin, index: 0 },
    ModelSpec { id: "APP_C2", arch: "<50, 50>", dataset: DatasetKind::Drebin, index: 1 },
    ModelSpec { id: "APP_C3", arch: "<200, 10>", dataset: DatasetKind::Drebin, index: 2 },
];

/// Looks up a spec by its paper id.
pub fn spec(id: &str) -> ModelSpec {
    *SPECS.iter().find(|s| s.id == id).unwrap_or_else(|| panic!("unknown model id {id}"))
}

/// LeNet-1: two 5×5 conv/pool stages, then a classifier head.
pub fn lenet1() -> Network {
    Network::new(
        &[1, 28, 28],
        vec![
            Layer::conv2d(1, 4, 5, 1, 0),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::conv2d(4, 12, 5, 1, 0),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::flatten(),
            Layer::dense(12 * 4 * 4, 10),
            Layer::softmax(),
        ],
    )
}

/// LeNet-4: wider convs plus one 120-unit hidden dense layer.
pub fn lenet4() -> Network {
    Network::new(
        &[1, 28, 28],
        vec![
            Layer::conv2d(1, 6, 5, 1, 2),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::conv2d(6, 16, 5, 1, 0),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::flatten(),
            Layer::dense(16 * 5 * 5, 120),
            Layer::relu(),
            Layer::dense(120, 10),
            Layer::softmax(),
        ],
    )
}

/// LeNet-5: LeNet-4 plus the 84-unit dense layer.
pub fn lenet5() -> Network {
    Network::new(
        &[1, 28, 28],
        vec![
            Layer::conv2d(1, 6, 5, 1, 2),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::conv2d(6, 16, 5, 1, 0),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::flatten(),
            Layer::dense(16 * 5 * 5, 120),
            Layer::relu(),
            Layer::dense(120, 84),
            Layer::relu(),
            Layer::dense(84, 10),
            Layer::softmax(),
        ],
    )
}

/// One VGG block: `count` 3×3 same-padding convs then a 2×2 max pool.
fn vgg_block(layers: &mut Vec<Layer>, in_ch: usize, out_ch: usize, count: usize) {
    let mut c = in_ch;
    for _ in 0..count {
        layers.push(Layer::conv2d(c, out_ch, 3, 1, 1));
        layers.push(Layer::relu());
        c = out_ch;
    }
    layers.push(Layer::maxpool2d(2));
}

/// VGG-Mini-16: three 2-conv blocks (the VGG-16 shape at laptop width).
pub fn vgg_mini_16() -> Network {
    let mut layers = Vec::new();
    vgg_block(&mut layers, 3, 8, 2);
    vgg_block(&mut layers, 8, 16, 2);
    vgg_block(&mut layers, 16, 32, 2);
    layers.push(Layer::flatten());
    layers.push(Layer::dense(32 * 4 * 4, 64));
    layers.push(Layer::relu());
    layers.push(Layer::dense(64, 10));
    layers.push(Layer::softmax());
    Network::new(&[3, 32, 32], layers)
}

/// VGG-Mini-19: like VGG-Mini-16 with an extra conv in the deeper blocks
/// (the VGG-19 depth increase, scaled).
pub fn vgg_mini_19() -> Network {
    let mut layers = Vec::new();
    vgg_block(&mut layers, 3, 8, 2);
    vgg_block(&mut layers, 8, 16, 3);
    vgg_block(&mut layers, 16, 32, 3);
    layers.push(Layer::flatten());
    layers.push(Layer::dense(32 * 4 * 4, 64));
    layers.push(Layer::relu());
    layers.push(Layer::dense(64, 10));
    layers.push(Layer::softmax());
    Network::new(&[3, 32, 32], layers)
}

/// ResNet-Mini: an initial conv then three residual stages, the middle and
/// last with projection skips for stride-2 downsampling (the ResNet50
/// structure at laptop scale).
pub fn resnet_mini() -> Network {
    let stage = |in_ch: usize, out_ch: usize, stride: usize| -> Layer {
        let body = vec![
            Layer::conv2d(in_ch, out_ch, 3, stride, 1),
            Layer::relu(),
            Layer::conv2d(out_ch, out_ch, 3, 1, 1),
        ];
        if stride == 1 && in_ch == out_ch {
            Layer::residual(body)
        } else {
            Layer::residual_projected(
                body,
                Conv2d::new(in_ch, out_ch, 1, stride, 0, Init::HeNormal),
            )
        }
    };
    Network::new(
        &[3, 32, 32],
        vec![
            Layer::conv2d(3, 8, 3, 1, 1),
            Layer::relu(),
            stage(8, 8, 1),
            Layer::relu(),
            stage(8, 16, 2),
            Layer::relu(),
            stage(16, 32, 2),
            Layer::relu(),
            Layer::avgpool2d(8),
            Layer::flatten(),
            Layer::dense(32, 10),
            Layer::softmax(),
        ],
    )
}

/// DAVE-Orig: the Nvidia DAVE-2 shape — strided conv tower, batch norm up
/// front, four dense layers down to a tanh steering output.
pub fn dave_orig() -> Network {
    Network::new(
        &[1, 32, 64],
        vec![
            Layer::conv2d(1, 12, 5, 2, 0),
            Layer::batch_norm(12),
            Layer::relu(),
            Layer::conv2d(12, 24, 5, 2, 0),
            Layer::relu(),
            Layer::conv2d(24, 36, 3, 2, 0),
            Layer::relu(),
            Layer::flatten(),
            Layer::dense(36 * 2 * 6, 100),
            Layer::relu(),
            Layer::dense(100, 50),
            Layer::relu(),
            Layer::dense(50, 10),
            Layer::relu(),
            Layer::dense(10, 1),
            Layer::tanh(),
        ],
    )
}

/// DAVE-NormInit: DAVE-Orig without the batch-normalization layer, with
/// LeCun-normalized initialization instead (as in the paper's variant).
pub fn dave_norminit() -> Network {
    let init = Init::LecunNormal;
    Network::new(
        &[1, 32, 64],
        vec![
            Layer::conv2d_init(1, 12, 5, 2, 0, init),
            Layer::relu(),
            Layer::conv2d_init(12, 24, 5, 2, 0, init),
            Layer::relu(),
            Layer::conv2d_init(24, 36, 3, 2, 0, init),
            Layer::relu(),
            Layer::flatten(),
            Layer::dense_init(36 * 2 * 6, 100, init),
            Layer::relu(),
            Layer::dense_init(100, 50, init),
            Layer::relu(),
            Layer::dense_init(50, 10, init),
            Layer::relu(),
            Layer::dense_init(10, 1, init),
            Layer::tanh(),
        ],
    )
}

/// DAVE-Dropout: a cut-down conv tower with dropout between the final
/// dense layers.
pub fn dave_dropout() -> Network {
    Network::new(
        &[1, 32, 64],
        vec![
            Layer::conv2d(1, 16, 5, 2, 0),
            Layer::relu(),
            Layer::conv2d(16, 32, 5, 2, 0),
            Layer::relu(),
            Layer::flatten(),
            Layer::dense(32 * 5 * 13, 100),
            Layer::relu(),
            Layer::dropout(0.25),
            Layer::dense(100, 20),
            Layer::relu(),
            Layer::dropout(0.25),
            Layer::dense(20, 1),
            Layer::tanh(),
        ],
    )
}

/// An MLP classifier `<h1, h2, …>` over `inputs` features and 2 classes,
/// the shape of all six malware detectors.
pub fn malware_mlp(inputs: usize, hidden: &[usize]) -> Network {
    let mut layers = Vec::new();
    let mut prev = inputs;
    for &h in hidden {
        layers.push(Layer::dense(prev, h));
        layers.push(Layer::relu());
        prev = h;
    }
    layers.push(Layer::dense(prev, 2));
    layers.push(Layer::softmax());
    Network::new(&[inputs], layers)
}

/// Builds the (untrained) network for a spec.
pub fn build(spec: &ModelSpec) -> Network {
    match spec.id {
        "MNI_C1" => lenet1(),
        "MNI_C2" => lenet4(),
        "MNI_C3" => lenet5(),
        "IMG_C1" => vgg_mini_16(),
        "IMG_C2" => vgg_mini_19(),
        "IMG_C3" => resnet_mini(),
        "DRV_C1" => dave_orig(),
        "DRV_C2" => dave_norminit(),
        "DRV_C3" => dave_dropout(),
        "PDF_C1" => malware_mlp(135, &[200, 200]),
        "PDF_C2" => malware_mlp(135, &[200, 200, 200]),
        "PDF_C3" => malware_mlp(135, &[200, 200, 200, 200]),
        "APP_C1" => malware_mlp(1200, &[200, 200]),
        "APP_C2" => malware_mlp(1200, &[50, 50]),
        "APP_C3" => malware_mlp(1200, &[200, 10]),
        other => panic!("unknown model id {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_coverage::{CoverageConfig, CoverageTracker};

    #[test]
    fn all_fifteen_build_and_validate() {
        for spec in &SPECS {
            let net = build(spec);
            assert_eq!(
                net.input_shape(),
                spec.dataset.input_shape().as_slice(),
                "{} input shape",
                spec.id
            );
            assert!(net.param_count() > 0, "{} has no parameters", spec.id);
        }
    }

    #[test]
    fn output_arity_matches_task() {
        for spec in &SPECS {
            let net = build(spec);
            let out = net.activation_shapes().last().unwrap().clone();
            if spec.dataset.is_regression() {
                assert_eq!(out, vec![1], "{} should be a regressor", spec.id);
            } else {
                let classes = if spec.dataset == DatasetKind::Mnist
                    || spec.dataset == DatasetKind::Imagenet
                {
                    10
                } else {
                    2
                };
                assert_eq!(out, vec![classes], "{} class count", spec.id);
            }
        }
    }

    #[test]
    fn trio_architectures_differ() {
        for kind in DatasetKind::ALL {
            let trio: Vec<Network> =
                SPECS.iter().filter(|s| s.dataset == kind).map(build).collect();
            assert_eq!(trio.len(), 3, "{kind:?} trio");
            let counts: Vec<usize> = trio.iter().map(|n| n.param_count()).collect();
            assert!(
                counts[0] != counts[1] || counts[1] != counts[2],
                "{kind:?} trio has identical parameter counts {counts:?}"
            );
        }
    }

    #[test]
    fn neuron_counts_are_reported() {
        // Table 1 reports a neuron count per model; ours come from the
        // coverage tracker at channel granularity.
        for spec in &SPECS {
            let net = build(spec);
            let tracker = CoverageTracker::for_network(&net, CoverageConfig::default());
            assert!(tracker.total() >= 10, "{} tracks only {} neurons", spec.id, tracker.total());
        }
    }

    #[test]
    fn dave_orig_has_batchnorm_and_norminit_does_not() {
        let orig = dave_orig();
        let norminit = dave_norminit();
        let has_bn = |n: &Network| n.layers().iter().any(|l| l.name().starts_with("BatchNorm"));
        assert!(has_bn(&orig));
        assert!(!has_bn(&norminit));
    }

    #[test]
    fn dave_dropout_has_dropout() {
        let net = dave_dropout();
        assert!(net.layers().iter().any(|l| l.name().starts_with("Dropout")));
    }

    #[test]
    fn resnet_mini_contains_residuals() {
        let net = resnet_mini();
        let blocks = net.layers().iter().filter(|l| l.name().starts_with("Residual")).count();
        assert_eq!(blocks, 3);
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec("DRV_C2").arch, "DAVE-NormInit");
    }

    #[test]
    #[should_panic(expected = "unknown model id")]
    fn bad_spec_panics() {
        spec("NOPE_C9");
    }
}
