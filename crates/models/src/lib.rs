//! The fifteen-model zoo the paper evaluates (Table 1), rebuilt and trained
//! from scratch.
//!
//! The paper tests three DNNs per dataset: LeNet-1/4/5 on MNIST,
//! VGG-16/VGG-19/ResNet50 on ImageNet, three Nvidia DAVE-2 variants on the
//! Udacity driving data, and three MLP widths each for the PDF and Drebin
//! malware detectors. We cannot load the original Keras checkpoints, so
//! [`arch`] reimplements each architecture (scaled to laptop-trainable
//! sizes for the ImageNet trio, exact for the rest), and [`zoo`] trains
//! them once on the synthetic datasets and caches the weights on disk —
//! every bench and example then reuses the same fifteen models, mirroring
//! the paper's fixed pre-trained checkpoints.
//!
//! [`variants`] builds the perturbed LeNet-1 family used by Table 12 to
//! probe how similar two models can be before differential testing stops
//! finding disagreements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod variants;
pub mod zoo;

pub use arch::{build, DatasetKind, ModelSpec, SPECS};
pub use zoo::{Scale, Zoo, ZooConfig};
