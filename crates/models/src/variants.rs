//! Perturbed LeNet-1 variants for the model-similarity experiment
//! (Table 12).
//!
//! The paper asks how similar two DNNs can be before DeepXplore stops
//! finding difference-inducing inputs, controlling three axes of
//! difference against a fixed LeNet-1 control: the number of training
//! samples withheld, the number of extra filters per convolutional layer,
//! and the number of extra training epochs.

use dx_nn::layer::Layer;
use dx_nn::network::Network;
use dx_nn::train::{train_classifier, TrainConfig};
use dx_nn::util::gather_rows;
use dx_nn::Optimizer;
use dx_tensor::{rng, Tensor};

/// LeNet-1 with `extra` additional filters in each convolutional layer
/// (`extra = 0` is the control architecture).
pub fn lenet1_wider(extra: usize) -> Network {
    let c1 = 4 + extra;
    let c2 = 12 + extra;
    Network::new(
        &[1, 28, 28],
        vec![
            Layer::conv2d(1, c1, 5, 1, 0),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::conv2d(c1, c2, 5, 1, 0),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::flatten(),
            Layer::dense(c2 * 4 * 4, 10),
            Layer::softmax(),
        ],
    )
}

/// Trains a LeNet-1-family network on the first `n_samples` rows of the
/// given data for `epochs` epochs; weight initialization and shuffling are
/// fixed by `seed` so two calls differing only in the controlled axis are
/// comparable.
pub fn train_variant(
    mut net: Network,
    x: &Tensor,
    labels: &[usize],
    n_samples: usize,
    epochs: usize,
    seed: u64,
) -> Network {
    assert!(n_samples <= x.shape()[0], "not enough data for {n_samples} samples");
    let idx: Vec<usize> = (0..n_samples).collect();
    let xs = gather_rows(x, &idx);
    let ls: Vec<usize> = labels[..n_samples].to_vec();
    let mut r = rng::rng(seed);
    net.init_weights(&mut r);
    let cfg = TrainConfig { epochs, batch_size: 32, seed, shuffle: true };
    train_classifier(&mut net, &xs, &ls, &cfg, &mut Optimizer::adam(1e-3));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_datasets::mnist;

    #[test]
    fn wider_variants_have_more_params() {
        let base = lenet1_wider(0).param_count();
        let plus2 = lenet1_wider(2).param_count();
        assert!(plus2 > base);
    }

    #[test]
    fn identical_training_yields_identical_weights() {
        let ds =
            mnist::generate(&mnist::MnistConfig { n_train: 120, n_test: 10, ..Default::default() });
        let a = train_variant(lenet1_wider(0), &ds.train_x, ds.train_labels.classes(), 100, 1, 7);
        let b = train_variant(lenet1_wider(0), &ds.train_x, ds.train_labels.classes(), 100, 1, 7);
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn sample_count_changes_weights() {
        let ds =
            mnist::generate(&mnist::MnistConfig { n_train: 130, n_test: 10, ..Default::default() });
        let a = train_variant(lenet1_wider(0), &ds.train_x, ds.train_labels.classes(), 100, 1, 7);
        let b = train_variant(lenet1_wider(0), &ds.train_x, ds.train_labels.classes(), 128, 1, 7);
        let differs = a.params().iter().zip(b.params().iter()).any(|(pa, pb)| pa != pb);
        assert!(differs, "withholding samples should perturb the weights");
    }
}
