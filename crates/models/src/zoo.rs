//! Train-once model zoo with a disk-backed weight cache.
//!
//! The paper fixes fifteen pre-trained checkpoints; every experiment then
//! treats them as read-only oracles. [`Zoo`] reproduces that workflow:
//! the first request for a model trains it on the synthetic dataset and
//! writes the weights to the cache directory; later requests (including
//! across processes — every bench target shares the cache) deserialize in
//! milliseconds. Datasets are regenerated deterministically and memoized
//! in memory.

use std::collections::HashMap;
use std::path::PathBuf;

use dx_datasets::{drebin, driving, imagenet, mnist, pdf, Dataset};
use dx_nn::network::Network;
use dx_nn::serialize;
use dx_nn::train::{
    evaluate_classifier, evaluate_regressor, train_classifier, train_regressor, TrainConfig,
};
use dx_nn::Optimizer;
use dx_tensor::rng;

use crate::arch::{build, DatasetKind, ModelSpec, SPECS};

/// Experiment scale: `Test` keeps everything small enough for `cargo test`;
/// `Full` is the bench default.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small datasets, short training — for unit/integration tests.
    Test,
    /// Bench-scale datasets and training.
    Full,
}

impl Scale {
    /// Reads the scale from the `DX_SCALE` environment variable
    /// (`"test"`/`"full"`), defaulting to `Full`.
    pub fn from_env() -> Self {
        match std::env::var("DX_SCALE").as_deref() {
            Ok("test") => Scale::Test,
            _ => Scale::Full,
        }
    }

    fn id(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Full => "full",
        }
    }
}

/// Zoo configuration.
#[derive(Clone, Debug)]
pub struct ZooConfig {
    /// Experiment scale.
    pub scale: Scale,
    /// Weight-cache directory; defaults to `DX_CACHE_DIR` or
    /// `<workspace>/.dx-cache`.
    pub cache_dir: PathBuf,
    /// Master seed; model `i` trains with stream `i` derived from it.
    pub seed: u64,
}

impl ZooConfig {
    /// The standard configuration at a given scale.
    pub fn new(scale: Scale) -> Self {
        let cache_dir = std::env::var("DX_CACHE_DIR").map(PathBuf::from).unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(".dx-cache")
        });
        Self { scale, cache_dir, seed: 0x000D_5EED }
    }
}

/// The model zoo: datasets plus trained models, lazily materialized.
pub struct Zoo {
    config: ZooConfig,
    datasets: HashMap<DatasetKind, Dataset>,
    models: HashMap<&'static str, Network>,
}

impl Zoo {
    /// Creates a zoo with the given configuration.
    pub fn new(config: ZooConfig) -> Self {
        std::fs::create_dir_all(&config.cache_dir).ok();
        Self { config, datasets: HashMap::new(), models: HashMap::new() }
    }

    /// Creates a zoo at the given scale with default cache/seed.
    pub fn at_scale(scale: Scale) -> Self {
        Self::new(ZooConfig::new(scale))
    }

    /// The configuration.
    pub fn config(&self) -> &ZooConfig {
        &self.config
    }

    /// The dataset for a kind, generated on first use.
    pub fn dataset(&mut self, kind: DatasetKind) -> &Dataset {
        let scale = self.config.scale;
        self.datasets.entry(kind).or_insert_with(|| generate_dataset(kind, scale))
    }

    /// A trained model, from memory, disk cache, or a fresh training run —
    /// in that order. Returns a clone so callers can hold several models.
    pub fn model(&mut self, id: &str) -> Network {
        let spec = crate::arch::spec(id);
        if let Some(net) = self.models.get(spec.id) {
            return net.clone();
        }
        let mut net = build(&spec);
        let path = self.weight_path(&spec);
        if path.exists() {
            if serialize::load_weights(&mut net, &path).is_ok() {
                self.models.insert(spec.id, net.clone());
                return net;
            }
            // A stale or corrupt cache entry: retrain below.
            eprintln!("zoo: cache at {} unusable, retraining {}", path.display(), spec.id);
        }
        self.train(&spec, &mut net);
        // Write-then-rename so concurrent readers never observe a partial
        // file; the name is unique per writer because tests may materialize
        // the same model from several threads at once.
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let unique = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp{}-{unique}", std::process::id()));
        serialize::save_weights(&net, &tmp).expect("writing the weight cache");
        std::fs::rename(&tmp, &path).expect("publishing the weight cache");
        self.models.insert(spec.id, net.clone());
        net
    }

    /// The trio of models for a dataset, in index order.
    pub fn trio(&mut self, kind: DatasetKind) -> Vec<Network> {
        SPECS.iter().filter(|s| s.dataset == kind).map(|s| self.model(s.id)).collect()
    }

    /// Test accuracy for classifiers, `1 − MSE` for the driving regressors
    /// (the paper's Table 1 footnote).
    pub fn accuracy(&mut self, id: &str) -> f32 {
        let spec = crate::arch::spec(id);
        let net = self.model(id);
        let ds = self.dataset(spec.dataset);
        if spec.dataset.is_regression() {
            1.0 - evaluate_regressor(&net, &ds.test_x, ds.test_labels.values())
        } else {
            evaluate_classifier(&net, &ds.test_x, ds.test_labels.classes())
        }
    }

    /// Cache-format version: bump when dataset generators or training
    /// recipes change, so stale weights are retrained rather than silently
    /// reused against a different data distribution.
    const CACHE_VERSION: &'static str = "v3";

    fn weight_path(&self, spec: &ModelSpec) -> PathBuf {
        self.config.cache_dir.join(format!(
            "{}_{}_{}_{:x}.dxw",
            spec.id,
            Self::CACHE_VERSION,
            self.config.scale.id(),
            self.config.seed
        ))
    }

    fn train(&mut self, spec: &ModelSpec, net: &mut Network) {
        let seed = rng::derive_seed(
            self.config.seed,
            spec.index as u64 + 100 * spec.dataset.id().len() as u64,
        );
        let mut r = rng::rng(seed);
        net.init_weights(&mut r);
        let (cfg, mut opt) = recipe(spec.dataset, self.config.scale, seed);
        let ds = self.dataset(spec.dataset).clone();
        eprintln!(
            "zoo: training {} ({}) on {} samples for {} epochs...",
            spec.id,
            spec.arch,
            ds.train_len(),
            cfg.epochs
        );
        let t0 = std::time::Instant::now();
        if spec.dataset.is_regression() {
            train_regressor(net, &ds.train_x, ds.train_labels.values(), &cfg, &mut opt);
        } else {
            train_classifier(net, &ds.train_x, ds.train_labels.classes(), &cfg, &mut opt);
        }
        eprintln!("zoo: trained {} in {:.1?}", spec.id, t0.elapsed());
    }
}

/// Dataset generation at each scale.
fn generate_dataset(kind: DatasetKind, scale: Scale) -> Dataset {
    let small = scale == Scale::Test;
    match kind {
        DatasetKind::Mnist => mnist::generate(&mnist::MnistConfig {
            n_train: if small { 900 } else { 4000 },
            n_test: if small { 250 } else { 800 },
            ..Default::default()
        }),
        DatasetKind::Imagenet => imagenet::generate(&imagenet::ImagenetConfig {
            n_train: if small { 800 } else { 2200 },
            n_test: if small { 200 } else { 500 },
            ..Default::default()
        }),
        DatasetKind::Driving => driving::generate(&driving::DrivingConfig {
            n_train: if small { 700 } else { 2500 },
            n_test: if small { 200 } else { 500 },
            ..Default::default()
        }),
        DatasetKind::Pdf => pdf::generate(&pdf::PdfConfig {
            n_train: if small { 1200 } else { 4000 },
            n_test: if small { 400 } else { 1000 },
            ..Default::default()
        }),
        DatasetKind::Drebin => drebin::generate(&drebin::DrebinConfig {
            n_train: if small { 1000 } else { 3000 },
            n_test: if small { 300 } else { 800 },
            ..Default::default()
        }),
    }
}

/// Per-dataset training recipe.
fn recipe(kind: DatasetKind, scale: Scale, seed: u64) -> (TrainConfig, Optimizer) {
    let small = scale == Scale::Test;
    let epochs = match kind {
        // Three epochs at both scales: two left the test-scale LeNets
        // under the 75% accuracy bar the end-to-end suite requires.
        DatasetKind::Mnist => 3,
        // The VGG/ResNet trio needs more optimizer steps than the rest;
        // a higher learning rate plus more epochs reaches >90% test
        // accuracy on the synthetic classes (see DESIGN.md).
        DatasetKind::Imagenet => {
            if small {
                6
            } else {
                8
            }
        }
        DatasetKind::Driving => {
            if small {
                3
            } else {
                5
            }
        }
        DatasetKind::Pdf | DatasetKind::Drebin => {
            if small {
                3
            } else {
                6
            }
        }
    };
    let lr = if kind == DatasetKind::Imagenet { 3e-3 } else { 1e-3 };
    (TrainConfig { epochs, batch_size: 32, seed, shuffle: true }, Optimizer::adam(lr))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_zoo(tag: &str) -> Zoo {
        let mut cfg = ZooConfig::new(Scale::Test);
        cfg.cache_dir = std::env::temp_dir().join(format!("dx_zoo_test_{tag}"));
        Zoo::new(cfg)
    }

    #[test]
    fn datasets_are_memoized() {
        let mut zoo = test_zoo("datasets");
        let a = zoo.dataset(DatasetKind::Pdf).train_x.clone();
        let b = zoo.dataset(DatasetKind::Pdf).train_x.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn malware_model_trains_and_caches() {
        let dir = std::env::temp_dir().join("dx_zoo_test_train");
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = ZooConfig::new(Scale::Test);
        cfg.cache_dir = dir.clone();
        let mut zoo = Zoo::new(cfg.clone());
        let net = zoo.model("PDF_C1");
        let acc = zoo.accuracy("PDF_C1");
        assert!(acc > 0.85, "PDF_C1 test accuracy {acc}");
        // A second zoo instance must hit the disk cache and agree exactly.
        let mut zoo2 = Zoo::new(cfg);
        let net2 = zoo2.model("PDF_C1");
        for (a, b) in net.params().iter().zip(net2.params().iter()) {
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drebin_trio_has_three_distinct_models() {
        let mut zoo = test_zoo("trio");
        let trio = zoo.trio(DatasetKind::Drebin);
        assert_eq!(trio.len(), 3);
        assert_ne!(trio[0].param_count(), trio[1].param_count());
    }

    #[test]
    fn scale_from_env_defaults_to_full() {
        // Do not set the variable here; just exercise the default path.
        if std::env::var("DX_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Full);
        }
    }
}
