//! `dx-campaign` — a parallel, coverage-guided fuzzing campaign engine
//! over the DeepXplore generator.
//!
//! The core crate's [`deepxplore::Generator`] reproduces Algorithm 1 as a
//! one-shot pass over a fixed seed list. Campaigns turn that into a
//! long-running service-shaped workload, following the corpus-and-energy
//! design of DLFuzz (Guo et al., FSE 2018):
//!
//! - **Corpus** ([`corpus::Corpus`]): seeds carry an energy that rises when
//!   fuzzing them yields new coverage or difference-inducing inputs
//!   and decays when it yields nothing; scheduling samples seeds
//!   energy-proportionally. Intermediate inputs that covered new units
//!   while the models still agreed are grafted back as child seeds.
//! - **Metric-generic signal** ([`dx_coverage::SignalSpec`]): campaigns
//!   steer by any [`dx_coverage::CoverageSignal`] — the paper's binary
//!   neuron coverage or DeepGauge k-multisection sections — selected per
//!   campaign; every union/checkpoint/energy path below is written against
//!   the signal, not a concrete tracker.
//! - **Worker pool** ([`engine::Campaign`]): each worker thread owns model
//!   clones and private per-model [`dx_coverage::CoverageSignal`]s, and
//!   periodically folds them into a shared global union
//!   ([`dx_coverage::CoverageSignal::merge`]), adopting the union back so
//!   workers don't chase units someone else covered.
//! - **Persistence** ([`checkpoint`]): JSONL corpus/stats/diffs checkpoints
//!   after every epoch; [`engine::Campaign::resume`] continues a campaign
//!   from disk.
//! - **Reporting** ([`report::CampaignReport`]): per-epoch seeds/sec,
//!   diffs/sec and the coverage-over-time curve.
//!
//! # Example
//!
//! ```
//! use dx_campaign::{Campaign, CampaignConfig, ModelSuite};
//! use deepxplore::constraints::Constraint;
//! use deepxplore::generator::TaskKind;
//! use deepxplore::Hyperparams;
//! use dx_coverage::{CoverageConfig, SignalSpec};
//! use dx_nn::layer::Layer;
//! use dx_nn::Network;
//! use dx_tensor::rng;
//!
//! let mut base = Network::new(
//!     &[8],
//!     vec![Layer::dense(8, 12), Layer::relu(), Layer::dense(12, 3), Layer::softmax()],
//! );
//! base.init_weights(&mut rng::rng(1));
//! let suite = ModelSuite {
//!     models: vec![base.clone(), base.perturbed(0.1, 2), base.perturbed(0.1, 3)],
//!     kind: TaskKind::Classification,
//!     hp: Hyperparams { step: 0.3, max_iters: 30, ..Default::default() },
//!     constraint: Constraint::Clip,
//!     signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
//! };
//! let seeds = rng::uniform(&mut rng::rng(4), &[10, 8], 0.2, 0.8);
//! let mut campaign = Campaign::new(
//!     suite,
//!     &seeds,
//!     CampaignConfig { workers: 2, epochs: 3, batch_per_epoch: 8, ..Default::default() },
//! );
//! let report = campaign.run().unwrap();
//! // Runs up to 3 epochs (fewer if the tiny corpus exhausts first).
//! assert!(!report.epochs.is_empty() && report.epochs.len() <= 3);
//! assert!(campaign.mean_coverage() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod corpus;
pub mod engine;
pub mod json;
pub mod report;

pub use corpus::{Corpus, CorpusEntry, EnergyModel};
pub use engine::{Campaign, CampaignConfig, FoundDiff, ModelSuite};
pub use report::{CampaignReport, EpochStats};

#[cfg(test)]
mod tests {
    use super::*;
    use deepxplore::constraints::Constraint;
    use deepxplore::generator::TaskKind;
    use deepxplore::Hyperparams;
    use dx_coverage::{CoverageConfig, SignalSpec};
    use dx_nn::layer::Layer;
    use dx_nn::Network;
    use dx_tensor::{rng, Tensor};

    fn classifier(seed: u64) -> Network {
        let mut n = Network::new(
            &[16],
            vec![Layer::dense(16, 14), Layer::relu(), Layer::dense(14, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    fn suite(seed: u64) -> ModelSuite {
        let base = classifier(seed);
        ModelSuite {
            models: vec![
                base.clone(),
                base.perturbed(0.1, seed + 1),
                base.perturbed(0.1, seed + 2),
            ],
            kind: TaskKind::Classification,
            hp: Hyperparams { step: 0.25, lambda1: 2.0, max_iters: 40, ..Default::default() },
            constraint: Constraint::Clip,
            signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
        }
    }

    fn seed_batch(seed: u64, n: usize) -> Tensor {
        rng::uniform(&mut rng::rng(seed), &[n, 16], 0.2, 0.8)
    }

    /// A suite steering by k-multisection coverage, profiles primed from
    /// a deterministic stand-in training set.
    fn ms_suite(seed: u64, k: usize) -> ModelSuite {
        let mut s = suite(seed);
        let train = rng::uniform(&mut rng::rng(seed ^ 0x7a1d), &[40, 16], 0.0, 1.0);
        s.signal = SignalSpec::multisection(CoverageConfig::default(), k, Vec::new())
            .primed(&s.models, &train, 40);
        s
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dx_campaign_engine_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn campaign_finds_differences_and_grows_coverage() {
        let mut campaign = Campaign::new(
            suite(1),
            &seed_batch(2, 12),
            CampaignConfig { epochs: 4, batch_per_epoch: 10, ..Default::default() },
        );
        let report = campaign.run().unwrap().clone();
        assert!(!report.epochs.is_empty());
        assert!(report.total_seeds() > 0);
        assert!(campaign.mean_coverage() > 0.0);
        assert!(
            !campaign.diffs().is_empty(),
            "campaign found no differences:\n{}",
            report.render()
        );
        // Every archived diff is a real disagreement.
        for diff in campaign.diffs() {
            assert!(deepxplore::diff::differs(&diff.predictions, 0.0));
        }
        // Initial seeds are still present.
        assert!(campaign.corpus().len() >= 12);
    }

    #[test]
    fn multi_worker_campaign_runs() {
        let mut campaign = Campaign::new(
            suite(10),
            &seed_batch(11, 12),
            CampaignConfig { workers: 4, epochs: 3, batch_per_epoch: 12, ..Default::default() },
        );
        let report = campaign.run().unwrap();
        assert_eq!(report.workers, 4);
        assert_eq!(report.epochs.len(), 3);
        assert!(campaign.mean_coverage() > 0.0);
    }

    #[test]
    fn single_worker_campaign_is_deterministic() {
        let run = || {
            let mut campaign = Campaign::new(
                suite(20),
                &seed_batch(21, 10),
                CampaignConfig {
                    workers: 1,
                    epochs: 3,
                    batch_per_epoch: 8,
                    seed: 7,
                    ..Default::default()
                },
            );
            campaign.run().unwrap();
            campaign
        };
        let a = run();
        let b = run();
        assert_eq!(a.diffs().len(), b.diffs().len());
        assert_eq!(a.corpus().len(), b.corpus().len());
        assert_eq!(a.coverage(), b.coverage());
        for (ea, eb) in a.corpus().entries().iter().zip(b.corpus().entries()) {
            assert_eq!(ea.id, eb.id);
            assert_eq!(ea.input, eb.input);
            assert_eq!(ea.energy.to_bits(), eb.energy.to_bits());
            assert_eq!(ea.times_fuzzed, eb.times_fuzzed);
        }
        for (da, db) in a.diffs().iter().zip(b.diffs()) {
            assert_eq!(da.input, db.input);
            assert_eq!(da.predictions, db.predictions);
        }
    }

    #[test]
    fn checkpoint_and_resume_continue_the_campaign() {
        let dir = tmp_dir("resume");
        let config = CampaignConfig {
            workers: 1,
            epochs: 2,
            batch_per_epoch: 8,
            checkpoint_dir: Some(dir.clone()),
            seed: 5,
            ..Default::default()
        };
        let mut first = Campaign::new(suite(30), &seed_batch(31, 10), config.clone());
        first.run().unwrap();
        assert_eq!(first.epochs_done(), 2);
        let diffs_before = first.diffs().len();
        let corpus_before = first.corpus().len();

        let mut resumed = Campaign::resume(suite(30), config).unwrap();
        assert_eq!(resumed.epochs_done(), 2);
        assert_eq!(resumed.corpus().len(), corpus_before);
        assert_eq!(resumed.diffs().len(), diffs_before);
        // The persisted coverage bitmaps restore the global union exactly.
        assert_eq!(resumed.coverage(), first.coverage());
        resumed.run().unwrap();
        assert_eq!(resumed.epochs_done(), 4);
        assert_eq!(resumed.report().epochs.len(), 4);
        assert!(resumed.diffs().len() >= diffs_before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_is_bit_identical_to_uninterrupted_run() {
        // Checkpoints persist per-worker generator RNG state, so a
        // 2-epochs-then-resume-2 campaign must match a straight 4-epoch run
        // exactly (single worker; multi-worker interleaving is timed).
        let config = |epochs: usize, dir: &std::path::Path| CampaignConfig {
            workers: 1,
            epochs,
            batch_per_epoch: 8,
            checkpoint_dir: Some(dir.to_path_buf()),
            seed: 9,
            ..Default::default()
        };
        let dir_a = tmp_dir("bitident_straight");
        let mut straight = Campaign::new(suite(80), &seed_batch(81, 10), config(4, &dir_a));
        straight.run().unwrap();

        let dir_b = tmp_dir("bitident_split");
        let mut first = Campaign::new(suite(80), &seed_batch(81, 10), config(2, &dir_b));
        first.run().unwrap();
        let mut resumed = Campaign::resume(suite(80), config(2, &dir_b)).unwrap();
        resumed.run().unwrap();

        assert_eq!(resumed.epochs_done(), straight.epochs_done());
        assert_eq!(resumed.coverage(), straight.coverage());
        assert_eq!(resumed.diffs().len(), straight.diffs().len());
        for (a, b) in resumed.diffs().iter().zip(straight.diffs()) {
            assert_eq!(a.input, b.input);
            assert_eq!(a.predictions, b.predictions);
            assert_eq!(a.target_model, b.target_model);
        }
        assert_eq!(resumed.corpus().len(), straight.corpus().len());
        for (a, b) in resumed.corpus().entries().iter().zip(straight.corpus().entries()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.input, b.input);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
            assert_eq!(a.times_fuzzed, b.times_fuzzed);
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn multisection_campaign_reaches_a_section_target_and_resumes_bit_identically() {
        // The finer DeepGauge signal drives the whole stack: a campaign
        // steering by section coverage reaches a section-level target, and
        // a checkpoint/resume split reproduces the uninterrupted run
        // exactly (profiles and hit-sets restored from disk).
        let config = |epochs: usize, dir: &std::path::Path| CampaignConfig {
            workers: 1,
            epochs,
            batch_per_epoch: 8,
            checkpoint_dir: Some(dir.to_path_buf()),
            seed: 11,
            ..Default::default()
        };
        let dir_a = tmp_dir("ms_straight");
        let mut straight = Campaign::new(ms_suite(70, 4), &seed_batch(71, 10), config(4, &dir_a));
        straight.run().unwrap();
        assert!(straight.mean_coverage() > 0.0, "no section coverage at all");

        let dir_b = tmp_dir("ms_split");
        let mut first = Campaign::new(ms_suite(70, 4), &seed_batch(71, 10), config(2, &dir_b));
        first.run().unwrap();
        // Resume with *unprimed* profiles: the checkpointed ones must be
        // restored from disk, not re-derived.
        let mut unprimed = suite(70);
        unprimed.signal.metric = dx_coverage::MetricKind::Multisection { k: 4 }.into();
        let mut resumed = Campaign::resume(unprimed, config(2, &dir_b)).unwrap();
        resumed.run().unwrap();

        assert_eq!(resumed.epochs_done(), straight.epochs_done());
        assert_eq!(resumed.coverage(), straight.coverage());
        assert_eq!(resumed.diffs().len(), straight.diffs().len());
        assert_eq!(resumed.corpus().len(), straight.corpus().len());
        for (a, b) in resumed.corpus().entries().iter().zip(straight.corpus().entries()) {
            assert_eq!(a.input, b.input);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        }

        // A section-coverage target stops the campaign early.
        let reached = straight.mean_coverage() * 0.5;
        let mut targeted = Campaign::new(
            ms_suite(70, 4),
            &seed_batch(71, 10),
            CampaignConfig {
                epochs: 100,
                batch_per_epoch: 8,
                desired_coverage: Some(reached),
                seed: 11,
                ..Default::default()
            },
        );
        let report = targeted.run().unwrap();
        assert!(report.epochs.len() < 100);
        assert!(targeted.mean_coverage() >= reached);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn resume_rejects_metric_mismatch() {
        let dir = tmp_dir("metric_mismatch");
        let config = CampaignConfig {
            workers: 1,
            epochs: 1,
            batch_per_epoch: 4,
            checkpoint_dir: Some(dir.clone()),
            ..Default::default()
        };
        let mut neuron = Campaign::new(suite(75), &seed_batch(76, 6), config.clone());
        neuron.run().unwrap();
        // Resuming a neuron checkpoint under multisection must fail loudly
        // rather than silently mixing hit-set semantics.
        let err = match Campaign::resume(ms_suite(75, 4), config) {
            Err(e) => e,
            Ok(_) => panic!("metric mismatch must be rejected"),
        };
        assert!(err.to_string().contains("metric"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rarity_energy_campaign_runs_and_is_deterministic() {
        let run = || {
            let mut campaign = Campaign::new(
                suite(90),
                &seed_batch(91, 10),
                CampaignConfig {
                    workers: 1,
                    epochs: 3,
                    batch_per_epoch: 8,
                    seed: 3,
                    energy: EnergyModel::Rarity,
                    ..Default::default()
                },
            );
            campaign.run().unwrap();
            campaign
        };
        let a = run();
        let b = run();
        assert!(a.mean_coverage() > 0.0);
        assert_eq!(a.corpus().len(), b.corpus().len());
        for (ea, eb) in a.corpus().entries().iter().zip(b.corpus().entries()) {
            assert_eq!(ea.energy.to_bits(), eb.energy.to_bits());
        }
    }

    #[test]
    fn desired_coverage_stops_early() {
        let mut campaign = Campaign::new(
            suite(40),
            &seed_batch(41, 10),
            CampaignConfig {
                epochs: 50,
                batch_per_epoch: 8,
                desired_coverage: Some(0.05),
                ..Default::default()
            },
        );
        let report = campaign.run().unwrap();
        assert!(report.epochs.len() < 50, "should stop well before 50 epochs");
        assert!(campaign.mean_coverage() >= 0.05);
    }

    #[test]
    fn duration_budget_is_respected() {
        let mut campaign = Campaign::new(
            suite(50),
            &seed_batch(51, 10),
            CampaignConfig {
                epochs: 10_000,
                batch_per_epoch: 4,
                duration: Some(std::time::Duration::from_millis(200)),
                ..Default::default()
            },
        );
        let started = std::time::Instant::now();
        campaign.run().unwrap();
        // Generously bounded: at most one epoch past the budget.
        assert!(started.elapsed() < std::time::Duration::from_secs(30));
        assert!(campaign.epochs_done() < 10_000);
    }

    #[test]
    fn reproduces_difference_rejects_malformed_claims_without_panicking() {
        let s = suite(200);
        let good = seed_batch(201, 1);
        let preds = s.predictions(&good);
        assert_eq!(preds.len(), 3);
        // A wrong-shaped tensor (a fabricated worker claim) is a failed
        // check, not a crash inside the forward pass.
        let bad_shape = rng::uniform(&mut rng::rng(1), &[1, 8], 0.0, 1.0);
        assert!(!s.reproduces_difference(&bad_shape, &preds));
        let unbatched = rng::uniform(&mut rng::rng(2), &[16], 0.0, 1.0);
        assert!(!s.reproduces_difference(&unbatched, &preds));
        // A claim with the wrong model count fails too.
        assert!(!s.reproduces_difference(&good, &preds[..1]));
        // And agreeing models mean the claim cannot reproduce at all.
        assert!(!s.reproduces_difference(&good, &preds));
    }

    #[test]
    fn identical_models_yield_no_diffs_but_still_cover() {
        let base = classifier(60);
        let twin_suite = ModelSuite {
            models: vec![base.clone(), base],
            kind: TaskKind::Classification,
            hp: Hyperparams { step: 0.25, max_iters: 10, ..Default::default() },
            constraint: Constraint::Clip,
            signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
        };
        let mut campaign = Campaign::new(
            twin_suite,
            &seed_batch(61, 6),
            CampaignConfig { epochs: 2, batch_per_epoch: 6, ..Default::default() },
        );
        campaign.run().unwrap();
        assert!(campaign.diffs().is_empty());
        assert!(campaign.mean_coverage() > 0.0);
    }

    #[test]
    fn campaign_reports_metrics_into_its_registry() {
        use dx_telemetry::phase::{Phase, TIME_BUCKETS};
        let registry = dx_telemetry::MetricsRegistry::new();
        let config = CampaignConfig {
            epochs: 3,
            batch_per_epoch: 8,
            registry: registry.clone(),
            ..Default::default()
        };
        let mut campaign = Campaign::new(suite(7), &seed_batch(8, 10), config);
        campaign.run().unwrap();
        let seeds_run: usize = campaign.report().epochs.iter().map(|e| e.seeds_run).sum();
        assert_eq!(registry.counter("dx_seeds_total", &[]).get(), seeds_run as u64);
        let total_diffs: usize = campaign.report().epochs.iter().map(|e| e.diffs_found).sum();
        assert_eq!(registry.counter("dx_diffs_total", &[]).get(), total_diffs as u64);
        // Every epoch timed, and hot-path phases observed at least one
        // iterate each (forward always runs; gradient too since the
        // models agree on in-distribution seeds).
        assert_eq!(registry.histogram("dx_epoch_seconds", &[], &[]).count(), 3);
        for phase in [Phase::Forward, Phase::Gradient, Phase::Constraint, Phase::Coverage] {
            let h =
                registry.histogram("dx_phase_seconds", &[("phase", phase.name())], &TIME_BUCKETS);
            assert!(h.count() > 0, "no observations for {}", phase.name());
        }
        // Per-component new-unit counters agree with the report.
        let newly: u64 = registry.counter("dx_new_units_total", &[("component", "neuron")]).get();
        assert!(newly > 0, "a fresh campaign must cover something");
        assert!(registry.gauge("dx_corpus_size", &[]).get() >= 10.0);
        let text = registry.render_prometheus();
        assert!(text.contains("dx_phase_seconds_bucket{phase=\"forward\",le=\"+Inf\"}"), "{text}");
    }
}
