//! Campaign statistics: per-epoch throughput and the coverage curve.

use std::time::Duration;

/// Statistics of one campaign epoch.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (continues across resumes).
    pub epoch: usize,
    /// Seeds fuzzed this epoch.
    pub seeds_run: usize,
    /// Difference-inducing inputs found this epoch.
    pub diffs_found: usize,
    /// Gradient-ascent iterations spent this epoch.
    pub iterations: usize,
    /// Neurons newly covered in the global union this epoch.
    pub newly_covered: usize,
    /// Mean global coverage after the epoch, in `[0, 1]`.
    pub mean_coverage: f32,
    /// Mean global coverage per metric component after the epoch (one
    /// entry for simple metrics, one per component for composites like
    /// `multisection:4+boundary`; empty in records loaded from checkpoints
    /// written before composite metrics existed).
    pub component_coverage: Vec<f32>,
    /// Corpus size after the epoch.
    pub corpus_len: usize,
    /// Wall-clock time of the epoch.
    pub elapsed: Duration,
}

impl EpochStats {
    /// Seeds fuzzed per wall-clock second.
    pub fn seeds_per_sec(&self) -> f64 {
        per_sec(self.seeds_run, self.elapsed)
    }

    /// Differences found per wall-clock second.
    pub fn diffs_per_sec(&self) -> f64 {
        per_sec(self.diffs_found, self.elapsed)
    }
}

fn per_sec(count: usize, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

/// The full record of a campaign run.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Per-epoch statistics, oldest first (including resumed-from epochs).
    pub epochs: Vec<EpochStats>,
    /// Worker threads used.
    pub workers: usize,
}

impl CampaignReport {
    /// Total seeds fuzzed.
    pub fn total_seeds(&self) -> usize {
        self.epochs.iter().map(|e| e.seeds_run).sum()
    }

    /// Total differences found.
    pub fn total_diffs(&self) -> usize {
        self.epochs.iter().map(|e| e.diffs_found).sum()
    }

    /// Total wall-clock time across epochs.
    pub fn total_elapsed(&self) -> Duration {
        self.epochs.iter().map(|e| e.elapsed).sum()
    }

    /// Overall seeds/second across the whole campaign.
    pub fn seeds_per_sec(&self) -> f64 {
        per_sec(self.total_seeds(), self.total_elapsed())
    }

    /// Overall diffs/second across the whole campaign.
    pub fn diffs_per_sec(&self) -> f64 {
        per_sec(self.total_diffs(), self.total_elapsed())
    }

    /// The coverage-over-time curve: `(cumulative seconds, mean coverage)`
    /// after each epoch.
    pub fn coverage_curve(&self) -> Vec<(f64, f32)> {
        let mut t = 0.0;
        self.epochs
            .iter()
            .map(|e| {
                t += e.elapsed.as_secs_f64();
                (t, e.mean_coverage)
            })
            .collect()
    }

    /// Renders the report as a human-readable table. Campaigns steering by
    /// a composite metric get an extra per-component coverage column
    /// (`a+b%`, in the metric spec's component order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let composite = self.epochs.iter().any(|e| e.component_coverage.len() > 1);
        out.push_str(&format!(
            "{:>5} {:>7} {:>7} {:>8} {:>8} {:>9} {:>10} {:>10} {:>8}",
            "epoch", "seeds", "diffs", "new-cov", "cover%", "corpus", "seeds/s", "diffs/s", "secs"
        ));
        if composite {
            out.push_str("  per-component%");
        }
        out.push('\n');
        for e in &self.epochs {
            out.push_str(&format!(
                "{:>5} {:>7} {:>7} {:>8} {:>7.2}% {:>9} {:>10.2} {:>10.2} {:>8.2}",
                e.epoch,
                e.seeds_run,
                e.diffs_found,
                e.newly_covered,
                100.0 * e.mean_coverage,
                e.corpus_len,
                e.seeds_per_sec(),
                e.diffs_per_sec(),
                e.elapsed.as_secs_f64(),
            ));
            if composite {
                let per: Vec<String> =
                    e.component_coverage.iter().map(|c| format!("{:.2}", 100.0 * c)).collect();
                out.push_str(&format!("  {}", per.join("+")));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "total: {} seeds, {} diffs in {:.2}s with {} worker(s) \
             ({:.2} seeds/s, {:.2} diffs/s)\n",
            self.total_seeds(),
            self.total_diffs(),
            self.total_elapsed().as_secs_f64(),
            self.workers,
            self.seeds_per_sec(),
            self.diffs_per_sec(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(i: usize, seeds: usize, diffs: usize, ms: u64) -> EpochStats {
        EpochStats {
            epoch: i,
            seeds_run: seeds,
            diffs_found: diffs,
            iterations: seeds * 10,
            newly_covered: 3,
            mean_coverage: 0.1 * (i + 1) as f32,
            component_coverage: vec![0.1 * (i + 1) as f32],
            corpus_len: seeds + i,
            elapsed: Duration::from_millis(ms),
        }
    }

    #[test]
    fn totals_and_rates() {
        let report = CampaignReport {
            epochs: vec![epoch(0, 10, 2, 500), epoch(1, 20, 3, 1500)],
            workers: 2,
        };
        assert_eq!(report.total_seeds(), 30);
        assert_eq!(report.total_diffs(), 5);
        assert!((report.seeds_per_sec() - 15.0).abs() < 1e-9);
        let curve = report.coverage_curve();
        assert_eq!(curve.len(), 2);
        assert!(curve[1].0 > curve[0].0);
        assert!(curve[1].1 > curve[0].1);
    }

    #[test]
    fn render_mentions_every_epoch() {
        let report = CampaignReport { epochs: vec![epoch(0, 5, 1, 100)], workers: 1 };
        let text = report.render();
        assert!(text.contains("seeds/s"));
        assert!(text.contains("total: 5 seeds, 1 diffs"));
    }

    #[test]
    fn render_adds_per_component_column_for_composite_metrics() {
        let single = CampaignReport { epochs: vec![epoch(0, 5, 1, 100)], workers: 1 };
        assert!(!single.render().contains("per-component%"));
        let mut comp = epoch(0, 5, 1, 100);
        comp.component_coverage = vec![0.25, 0.0625];
        let report = CampaignReport { epochs: vec![comp], workers: 1 };
        let text = report.render();
        assert!(text.contains("per-component%"), "{text}");
        assert!(text.contains("25.00+6.25"), "{text}");
    }

    #[test]
    fn zero_elapsed_rates_are_zero() {
        let e = EpochStats { elapsed: Duration::ZERO, ..epoch(0, 5, 1, 0) };
        assert_eq!(e.seeds_per_sec(), 0.0);
    }
}
