//! The campaign corpus: seeds plus coverage-guided energy scheduling.
//!
//! DLFuzz-style seed maintenance on top of DeepXplore's generator: every
//! entry carries an **energy** that rises when fuzzing it yields new
//! coverage or difference-inducing inputs and decays when it yields
//! nothing, and the scheduler samples entries energy-proportionally
//! (discounted by how often each was already fuzzed). Inputs that covered
//! new units while the models still agreed enter the corpus as children
//! of the seed they grew from, so productive regions of the input space
//! are mined deeper.
//!
//! Energy accounting is metric-generic: "coverage" here is whatever
//! [`dx_coverage::CoverageSignal`] the campaign steers by, so under
//! `multisection:k` the cover bonus rewards newly hit range *sections*
//! and the rarity model scales by section-union saturation — a strictly
//! finer reward signal than the paper's boolean per-neuron bit. Under a
//! composite metric (`multisection:4+boundary`) the bonus is computed
//! **per component**, each scaled by *that component's* union saturation,
//! so a seed that reaches a rare boundary corner is mined harder than one
//! that hits yet another section of an almost-drained component.

use dx_tensor::rng::Rng;
use dx_tensor::Tensor;
use rand::Rng as _;

use deepxplore::SeedRun;

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Stable id (checkpoint-persistent, never reused).
    pub id: usize,
    /// The entry this one was mutated from (`None` for initial seeds).
    pub parent: Option<usize>,
    /// Mutation depth (0 for initial seeds).
    pub depth: usize,
    /// The input, batched `[1, ...]`.
    pub input: Tensor,
    /// Scheduling energy; higher is fuzzed sooner.
    pub energy: f32,
    /// How many times this entry has been scheduled.
    pub times_fuzzed: usize,
    /// Difference-inducing inputs grown from this entry.
    pub diffs_found: usize,
    /// Neurons newly covered by steps from this entry.
    pub new_coverage: usize,
    /// Whether further fuzzing is pointless (models already disagree on
    /// the entry, or the constraint admits no movement).
    pub exhausted: bool,
}

/// Energy-model constants. One place, so the scheduler's shape is obvious.
mod energy {
    /// Initial seeds start here.
    pub const INITIAL: f32 = 1.0;
    /// Bonus per difference-inducing input grown from an entry.
    pub const DIFF_BONUS: f32 = 0.5;
    /// Bonus per newly covered neuron (capped).
    pub const COVER_BONUS: f32 = 0.05;
    /// Cap on the per-step coverage bonus.
    pub const COVER_BONUS_CAP: f32 = 0.4;
    /// Multiplicative decay when a step yields nothing.
    pub const BARREN_DECAY: f32 = 0.6;
    /// A child's starting energy relative to its parent's.
    pub const CHILD_FRACTION: f32 = 0.9;
    /// Floor so no live entry ever reaches weight zero.
    pub const FLOOR: f32 = 0.05;
    /// Cap on the rarity multiplier ([`super::EnergyModel::Rarity`]).
    pub const RARITY_MAX: f32 = 8.0;
}

/// How scheduling energy responds to a step's outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnergyModel {
    /// DLFuzz-style: a fixed bonus per newly covered unit (neuron, or
    /// range section under multisection) or found difference,
    /// multiplicative decay when a step yields nothing.
    #[default]
    Classic,
    /// [`EnergyModel::Classic`], with the coverage bonus scaled by
    /// global-union rarity: a unit that is new to the merged union when
    /// the union is already `c` saturated earns a `1/(1-c)` multiplier
    /// (capped), so seeds that reach globally-rare neurons — or, under
    /// multisection, rare range sections — are mined harder.
    Rarity,
}

impl std::str::FromStr for EnergyModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "classic" => Ok(Self::Classic),
            "rarity" => Ok(Self::Rarity),
            other => Err(format!("unknown energy model `{other}` (classic|rarity)")),
        }
    }
}

/// The corpus: entries plus the scheduling state.
#[derive(Clone, Debug)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    next_id: usize,
    /// Corpus size cap; beyond it, barren non-initial entries are evicted.
    max_len: usize,
    energy_model: EnergyModel,
}

impl Corpus {
    /// Creates a corpus from initial seed inputs (each batched `[1, ...]`).
    pub fn new(seeds: Vec<Tensor>, max_len: usize) -> Self {
        let mut corpus = Self {
            entries: Vec::new(),
            next_id: 0,
            max_len: max_len.max(1),
            energy_model: EnergyModel::Classic,
        };
        for input in seeds {
            let id = corpus.next_id;
            corpus.next_id += 1;
            corpus.entries.push(CorpusEntry {
                id,
                parent: None,
                depth: 0,
                input,
                energy: energy::INITIAL,
                times_fuzzed: 0,
                diffs_found: 0,
                new_coverage: 0,
                exhausted: false,
            });
        }
        corpus
    }

    /// Rebuilds a corpus from checkpointed entries.
    pub fn from_entries(entries: Vec<CorpusEntry>, max_len: usize) -> Self {
        let next_id = entries.iter().map(|e| e.id + 1).max().unwrap_or(0);
        Self { entries, next_id, max_len: max_len.max(1), energy_model: EnergyModel::Classic }
    }

    /// Sets the energy model (builder style; the default is
    /// [`EnergyModel::Classic`]).
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> EnergyModel {
        self.energy_model
    }

    /// All entries, in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry by id.
    pub fn get(&self, id: usize) -> Option<&CorpusEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    fn get_mut(&mut self, id: usize) -> Option<&mut CorpusEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Scheduling weight of an entry: energy discounted by prior attention.
    fn weight(entry: &CorpusEntry) -> f32 {
        if entry.exhausted {
            0.0
        } else {
            (entry.energy / (1.0 + entry.times_fuzzed as f32)).max(energy::FLOOR)
        }
    }

    /// Selects up to `batch` entry ids for one epoch, energy-proportionally
    /// without replacement. Deterministic given the RNG state.
    pub fn schedule(&self, batch: usize, rng: &mut Rng) -> Vec<usize> {
        self.schedule_excluding(batch, rng, &[])
    }

    /// [`Corpus::schedule`], skipping `excluded` ids — the distributed
    /// coordinator excludes seeds currently out on a lease so two workers
    /// never fuzz the same entry concurrently.
    pub fn schedule_excluding(
        &self,
        batch: usize,
        rng: &mut Rng,
        excluded: &[usize],
    ) -> Vec<usize> {
        let mut pool: Vec<(usize, f32)> = self
            .entries
            .iter()
            .filter(|e| !e.exhausted && !excluded.contains(&e.id))
            .map(|e| (e.id, Self::weight(e)))
            .collect();
        let mut picked = Vec::with_capacity(batch.min(pool.len()));
        for _ in 0..batch {
            if pool.is_empty() {
                break;
            }
            let total: f32 = pool.iter().map(|(_, w)| w).sum();
            let mut ticket = rng.gen_range(0.0..total.max(f32::MIN_POSITIVE));
            let mut chosen = pool.len() - 1;
            for (i, (_, w)) in pool.iter().enumerate() {
                if ticket < *w {
                    chosen = i;
                    break;
                }
                ticket -= w;
            }
            picked.push(pool.swap_remove(chosen).0);
        }
        picked
    }

    /// Folds one fuzzing step's outcome back into the corpus: updates the
    /// scheduled entry's energy and statistics, and grafts the step's
    /// corpus candidate (if any) as a child. Returns the child's id.
    ///
    /// `global_coverage` is the per-metric-component mean coverage of the
    /// merged global union when the step ran (one entry for simple
    /// metrics); [`EnergyModel::Classic`] ignores it, while
    /// [`EnergyModel::Rarity`] uses it to weight how rare each component's
    /// newly covered units were. Pass `&[]` when no global view exists.
    ///
    /// An unknown `id` is a no-op returning `None`: with the corpus at its
    /// size cap, an entry scheduled at the start of an epoch can be evicted
    /// by an earlier absorb in the same epoch before its own result lands.
    pub fn absorb(&mut self, id: usize, run: &SeedRun, global_coverage: &[f32]) -> Option<usize> {
        let max_len = self.max_len;
        let model = self.energy_model;
        let rarity = move |saturation: f32| match model {
            EnergyModel::Classic => 1.0,
            EnergyModel::Rarity => (1.0 / (1.0 - saturation.clamp(0.0, 1.0)).max(f32::EPSILON))
                .clamp(1.0, energy::RARITY_MAX),
        };
        let entry = self.get_mut(id)?;
        entry.times_fuzzed += 1;
        entry.new_coverage += run.newly_covered;
        let mut child = None;
        if run.preexisting {
            // The models already disagree here; gradient ascent has nothing
            // left to split.
            entry.exhausted = true;
            return None;
        }
        let mut productive = false;
        if run.test.is_some() {
            entry.diffs_found += 1;
            entry.energy += energy::DIFF_BONUS;
            productive = true;
        }
        if run.newly_covered > 0 {
            // Per-component cover bonus: each component's find is capped
            // and rarity-scaled by that component's own union saturation.
            // Runs without a per-component split (older wire peers) fall
            // back to one pooled component, which reproduces the previous
            // single-metric arithmetic exactly.
            let pooled = [run.newly_covered];
            let per_component: &[usize] =
                if run.newly_by_component.is_empty() { &pooled } else { &run.newly_by_component };
            let pooled_saturation = if global_coverage.is_empty() {
                0.0
            } else {
                global_coverage.iter().sum::<f32>() / global_coverage.len() as f32
            };
            for (c, &newly) in per_component.iter().enumerate() {
                if newly == 0 {
                    continue;
                }
                let saturation = global_coverage.get(c).copied().unwrap_or(pooled_saturation);
                entry.energy += (newly as f32 * energy::COVER_BONUS).min(energy::COVER_BONUS_CAP)
                    * rarity(saturation);
            }
            productive = true;
        }
        if !productive {
            entry.energy = (entry.energy * energy::BARREN_DECAY).max(energy::FLOOR);
            if run.iterations == 0 {
                // The constraint admitted no movement at all.
                entry.exhausted = true;
            }
        }
        if let Some(candidate) = &run.corpus_candidate {
            let parent_energy = entry.energy;
            let parent_depth = entry.depth;
            let child_id = self.next_id;
            self.next_id += 1;
            self.entries.push(CorpusEntry {
                id: child_id,
                parent: Some(id),
                depth: parent_depth + 1,
                input: candidate.clone(),
                energy: (parent_energy * energy::CHILD_FRACTION).max(energy::FLOOR),
                times_fuzzed: 0,
                diffs_found: 0,
                new_coverage: 0,
                exhausted: false,
            });
            child = Some(child_id);
        }
        if self.entries.len() > max_len {
            self.evict();
        }
        child
    }

    /// Evicts the lowest-weight non-initial entries down to the cap.
    /// Initial seeds are never evicted: they anchor reproducibility and
    /// keep the campaign from collapsing onto one lineage.
    fn evict(&mut self) {
        while self.entries.len() > self.max_len {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.parent.is_some())
                .min_by(|(_, a), (_, b)| {
                    Self::weight(a).total_cmp(&Self::weight(b)).then(b.id.cmp(&a.id))
                    // Tie-break: evict the newest.
                })
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    self.entries.remove(i);
                }
                None => break, // Only initial seeds left.
            }
        }
    }

    /// Whether every entry is exhausted (nothing left to schedule).
    pub fn all_exhausted(&self) -> bool {
        self.entries.iter().all(|e| e.exhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    fn seed_tensors(n: usize) -> Vec<Tensor> {
        (0..n).map(|i| rng::uniform(&mut rng::rng(i as u64), &[1, 4], 0.0, 1.0)).collect()
    }

    fn barren_run() -> SeedRun {
        SeedRun {
            test: None,
            preexisting: false,
            iterations: 5,
            newly_covered: 0,
            newly_by_component: Vec::new(),
            corpus_candidate: None,
        }
    }

    #[test]
    fn schedule_prefers_high_energy() {
        let mut corpus = Corpus::new(seed_tensors(2), 64);
        corpus.entries[0].energy = 100.0;
        corpus.entries[1].energy = 0.1;
        let mut r = rng::rng(1);
        let mut first_hits = 0;
        for _ in 0..50 {
            if corpus.schedule(1, &mut r)[0] == 0 {
                first_hits += 1;
            }
        }
        assert!(first_hits > 40, "high-energy seed picked {first_hits}/50");
    }

    #[test]
    fn schedule_without_replacement_within_batch() {
        let corpus = Corpus::new(seed_tensors(5), 64);
        let mut r = rng::rng(2);
        let picks = corpus.schedule(5, &mut r);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        // Requesting more than available caps at the pool size.
        assert_eq!(corpus.schedule(10, &mut r).len(), 5);
    }

    #[test]
    fn schedule_excluding_skips_leased_ids() {
        let corpus = Corpus::new(seed_tensors(5), 64);
        let mut r = rng::rng(8);
        for _ in 0..20 {
            let picks = corpus.schedule_excluding(5, &mut r, &[1, 3]);
            assert_eq!(picks.len(), 3, "only 3 schedulable: {picks:?}");
            assert!(!picks.contains(&1) && !picks.contains(&3));
        }
    }

    #[test]
    fn rarity_energy_scales_with_global_saturation() {
        let productive = SeedRun { newly_covered: 2, ..barren_run() };
        let mut classic = Corpus::new(seed_tensors(1), 64);
        let mut early = Corpus::new(seed_tensors(1), 64).with_energy_model(EnergyModel::Rarity);
        let mut late = Corpus::new(seed_tensors(1), 64).with_energy_model(EnergyModel::Rarity);
        classic.absorb(0, &productive, &[0.9]);
        early.absorb(0, &productive, &[0.0]);
        late.absorb(0, &productive, &[0.9]);
        // Classic ignores the global view entirely; rarity at zero
        // saturation matches it, and near-saturation finds earn more.
        assert_eq!(classic.entries()[0].energy.to_bits(), early.entries()[0].energy.to_bits());
        assert!(late.entries()[0].energy > early.entries()[0].energy);
    }

    #[test]
    fn rarity_multiplier_is_capped() {
        let productive = SeedRun { newly_covered: 100, ..barren_run() };
        let mut c = Corpus::new(seed_tensors(1), 64).with_energy_model(EnergyModel::Rarity);
        c.absorb(0, &productive, &[1.0]); // Would be an infinite multiplier uncapped.
        assert!(c.entries()[0].energy.is_finite());
        assert!(c.entries()[0].energy <= 1.0 + 0.4 * 8.0 + f32::EPSILON);
    }

    #[test]
    fn energy_model_parses() {
        assert_eq!("classic".parse::<EnergyModel>().unwrap(), EnergyModel::Classic);
        assert_eq!("rarity".parse::<EnergyModel>().unwrap(), EnergyModel::Rarity);
        assert!("dlfuzz".parse::<EnergyModel>().is_err());
    }

    #[test]
    fn absorb_raises_energy_on_progress_and_decays_barren() {
        let mut corpus = Corpus::new(seed_tensors(1), 64);
        let before = corpus.entries[0].energy;
        let productive = SeedRun { newly_covered: 3, ..barren_run() };
        corpus.absorb(0, &productive, &[]);
        assert!(corpus.entries[0].energy > before);
        let raised = corpus.entries[0].energy;
        corpus.absorb(0, &barren_run(), &[]);
        assert!(corpus.entries[0].energy < raised);
        assert_eq!(corpus.entries[0].times_fuzzed, 2);
    }

    #[test]
    fn absorb_grafts_children() {
        let mut corpus = Corpus::new(seed_tensors(1), 64);
        let run = SeedRun {
            newly_covered: 2,
            corpus_candidate: Some(rng::uniform(&mut rng::rng(9), &[1, 4], 0.0, 1.0)),
            ..barren_run()
        };
        let child = corpus.absorb(0, &run, &[]).expect("child grafted");
        assert_eq!(corpus.len(), 2);
        let c = corpus.get(child).unwrap();
        assert_eq!(c.parent, Some(0));
        assert_eq!(c.depth, 1);
        assert!(!c.exhausted);
    }

    #[test]
    fn preexisting_exhausts_entry() {
        let mut corpus = Corpus::new(seed_tensors(1), 64);
        let run = SeedRun { preexisting: true, iterations: 0, ..barren_run() };
        corpus.absorb(0, &run, &[]);
        assert!(corpus.entries[0].exhausted);
        assert!(corpus.all_exhausted());
        let mut r = rng::rng(3);
        assert!(corpus.schedule(4, &mut r).is_empty());
    }

    #[test]
    fn eviction_caps_size_and_keeps_initial_seeds() {
        let mut corpus = Corpus::new(seed_tensors(3), 4);
        for step in 0..6 {
            let run = SeedRun {
                newly_covered: 1,
                corpus_candidate: Some(rng::uniform(&mut rng::rng(100 + step), &[1, 4], 0.0, 1.0)),
                ..barren_run()
            };
            corpus.absorb(step as usize % 3, &run, &[]);
        }
        assert!(corpus.len() <= 4, "len {}", corpus.len());
        for id in 0..3 {
            assert!(corpus.get(id).is_some(), "initial seed {id} evicted");
        }
    }

    #[test]
    fn absorb_of_evicted_entry_is_a_noop() {
        // Entries scheduled early in an epoch can be evicted by a prior
        // absorb once the corpus hits its cap; their late-arriving results
        // must not panic.
        let mut corpus = Corpus::new(seed_tensors(1), 64);
        let child = corpus
            .absorb(
                0,
                &SeedRun {
                    newly_covered: 1,
                    corpus_candidate: Some(rng::uniform(&mut rng::rng(5), &[1, 4], 0.0, 1.0)),
                    ..barren_run()
                },
                &[],
            )
            .unwrap();
        // Simulate the child's eviction, then a result for it arriving.
        corpus.entries.retain(|e| e.id != child);
        assert_eq!(corpus.absorb(child, &barren_run(), &[]), None);
        assert_eq!(corpus.len(), 1);
    }

    #[test]
    fn from_entries_resumes_id_sequence() {
        let mut corpus = Corpus::new(seed_tensors(2), 64);
        let run = SeedRun {
            newly_covered: 1,
            corpus_candidate: Some(rng::uniform(&mut rng::rng(7), &[1, 4], 0.0, 1.0)),
            ..barren_run()
        };
        let child = corpus.absorb(1, &run, &[]).unwrap();
        let reloaded = Corpus::from_entries(corpus.entries().to_vec(), 64);
        assert_eq!(reloaded.next_id, child + 1);
    }
}
