//! A minimal JSON reader/writer for campaign checkpoints.
//!
//! The workspace policy is zero external runtime dependencies, so instead
//! of serde this module implements exactly what JSONL checkpoints need: a
//! [`Json`] value tree, a recursive-descent parser, and an emitter. Floats
//! are written with Rust's shortest-round-trip `Display`, so `f32` values
//! survive a write/read cycle bit-for-bit.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f32`, if numeric.
    pub fn as_f32(&self) -> Option<f32> {
        self.as_f64().map(|n| n as f32)
    }

    /// The value as `usize`, if a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to compact JSON (`value.to_string()`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() {
        if n == 0.0 && n.is_sign_negative() {
            out.push_str("-0");
        } else if n.fract() == 0.0 && n.abs() < 9e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience constructors for emitting checkpoints.
pub mod build {
    use super::Json;

    /// An object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A `usize` as a number.
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// An array of `f32`s.
    pub fn f32s(values: &[f32]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(f64::from(v))).collect())
    }

    /// An array of `usize`s.
    pub fn ints(values: &[usize]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect())
    }

    /// A string.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// An optional `usize` (`null` when absent).
    pub fn opt_int(n: Option<usize>) -> Json {
        n.map_or(Json::Null, int)
    }
}

/// A parse failure with byte position and message.
#[derive(Debug)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(&format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = build::obj(vec![
            ("id", build::int(7)),
            ("energy", build::num(1.25f32)),
            ("parent", Json::Null),
            ("ok", Json::Bool(true)),
            ("name", build::str("seed \"x\"\n")),
            ("data", build::f32s(&[0.1, -2.5, 3.0e-7])),
            ("shape", build::ints(&[1, 28, 28])),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn f32_survives_round_trip_exactly() {
        // Awkward values: subnormal-ish, repeating binary fractions, big.
        for &v in &[0.1f32, 1.0 / 3.0, 1.2345678e-20, 3.4e38, -0.0, 42.0] {
            let text = Json::Num(f64::from(v)).to_string();
            let back = parse(&text).unwrap().as_f32().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} -> {text}");
        }
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_emit_without_exponent() {
        assert_eq!(build::int(123456789).to_string(), "123456789");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn string_escapes_round_trip() {
        // Control characters, quotes, backslashes, tabs, multi-byte UTF-8.
        let awkward = "a\"b\\c\nd\re\tf\u{1}g\u{1f}héllo 日本語 🦀 \\\"nested\\\"";
        let text = Json::Str(awkward.to_string()).to_string();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), awkward);
        // Explicit escape forms parse to the same characters.
        assert_eq!(
            parse(r#""A\t\n\r\b\f\/\\\"""#).unwrap().as_str().unwrap(),
            "A\t\n\r\u{8}\u{c}/\\\""
        );
        // A lone surrogate cannot be a char; it maps to U+FFFD.
        assert_eq!(parse(r#""\ud800""#).unwrap().as_str().unwrap(), "\u{fffd}");
    }

    #[test]
    fn control_characters_always_escape() {
        let text = Json::Str("\u{0}\u{1f}".to_string()).to_string();
        assert_eq!(text, "\"\\u0000\\u001f\"");
    }

    #[test]
    fn deeply_nested_values_parse() {
        let depth = 500;
        let mut text = String::new();
        for _ in 0..depth {
            text.push_str("[{\"k\":");
        }
        text.push('1');
        for _ in 0..depth {
            text.push_str("}]");
        }
        let parsed = parse(&text).unwrap();
        let mut v = &parsed;
        for _ in 0..depth {
            v = v.as_arr().unwrap()[0].get("k").unwrap();
        }
        assert_eq!(v.as_usize(), Some(1));
    }

    #[test]
    fn every_truncation_of_a_document_is_rejected() {
        let doc = r#"{"id":7,"e":-1.25e-3,"s":"a\"bA","a":[1,null,true],"o":{"k":false}}"#;
        assert!(parse(doc).is_ok());
        for cut in 1..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let prefix = &doc[..cut];
            assert!(parse(prefix).is_err(), "truncated doc parsed: `{prefix}`");
        }
    }

    #[test]
    fn truncated_unicode_escape_is_rejected() {
        assert!(parse(r#""\u00"#).is_err());
        assert!(parse(r#""\u00zz""#).is_err());
        assert!(parse(r#""\"#).is_err());
    }

    #[test]
    fn rejects_more_malformed_documents() {
        for bad in [
            "{\"a\" 1}",
            "{\"a\":}",
            "{,}",
            "[1 2]",
            "tru",
            "+1",
            "01a",
            "\u{7f}",
            "{\"a\":1}}",
            "--1",
            "1e",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed `{bad}`");
        }
    }
}
