//! The campaign engine: a persistent, multi-worker fuzzing loop.
//!
//! Each **epoch** the scheduler draws a batch of corpus entries
//! (energy-proportionally), splits it round-robin across a pool of worker
//! threads, and each worker runs [`Generator::run_seed`] on its share
//! against its own model clones. Workers accumulate neuron coverage in
//! private trackers and periodically fold them into a shared global union
//! ([`CoverageSignal::merge`]), adopting the union back so no worker
//! chases neurons another already covered. Between epochs the coordinator
//! absorbs results into the corpus, records per-epoch throughput, and
//! checkpoints everything to disk so a campaign can resume.

use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use deepxplore::constraints::Constraint;
use deepxplore::diff::Prediction;
use deepxplore::generator::{Generator, SeedRun, TaskKind};
use deepxplore::Hyperparams;
use dx_coverage::{CoverageSignal, SignalSpec};
use dx_nn::network::Network;
use dx_nn::util::gather_rows;
use dx_telemetry::events::{emit, Level};
use dx_telemetry::phase::{Phase, PhaseAccum, TIME_BUCKETS};
use dx_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, Span};
use dx_tensor::{rng, Tensor};
use std::sync::Arc;

use crate::checkpoint;
use crate::corpus::{Corpus, EnergyModel};
use crate::report::{CampaignReport, EpochStats};

/// The models under test plus the generation setup they share — everything
/// [`Campaign`] needs besides the corpus and scheduling knobs.
#[derive(Clone)]
pub struct ModelSuite {
    /// At least two models with identical input/output shapes.
    pub models: Vec<Network>,
    /// Classification or regression oracle.
    pub kind: TaskKind,
    /// Algorithm 1 hyperparameters.
    pub hp: Hyperparams,
    /// Domain constraint for generated inputs.
    pub constraint: Constraint,
    /// The coverage signal the campaign steers by: metric kind, coverage
    /// config, and (for multisection) per-model training-set profiles.
    pub signal: SignalSpec,
}

impl ModelSuite {
    /// Each model's prediction on `input` (batched `[1, ...]`), under the
    /// suite's task oracle. This is the ground truth a distributed
    /// coordinator re-derives when spot-checking a worker's claimed
    /// difference-inducing input.
    pub fn predictions(&self, input: &Tensor) -> Vec<Prediction> {
        self.models
            .iter()
            .map(|m| {
                let pass = m.forward(input);
                match self.kind {
                    TaskKind::Classification => deepxplore::diff::class_of(pass.output()),
                    TaskKind::Regression { .. } => deepxplore::diff::value_of(pass.output()),
                }
            })
            .collect()
    }

    /// The oracle's disagreement dead zone: zero for classifiers, the
    /// direction threshold for steering regressors.
    pub fn oracle_threshold(&self) -> f32 {
        match self.kind {
            TaskKind::Classification => 0.0,
            TaskKind::Regression { direction_threshold } => direction_threshold,
        }
    }

    /// Whether `input` really is difference-inducing *and* the claimed
    /// predictions match what the suite's own models say (classes exactly;
    /// steering values by direction, which is what the oracle compares).
    /// `false` for any shape- or kind-mismatched claim — fabricated
    /// results must fail the check, not crash it.
    pub fn reproduces_difference(&self, input: &Tensor, claimed: &[Prediction]) -> bool {
        // A wrong-shaped tensor is a failed claim, not a panic inside the
        // forward pass.
        let shape_fits = |m: &Network| {
            input.shape().len() == 1 + m.input_shape().len()
                && input.shape()[0] == 1
                && &input.shape()[1..] == m.input_shape()
        };
        if !self.models.iter().all(shape_fits) {
            return false;
        }
        let threshold = self.oracle_threshold();
        let actual = self.predictions(input);
        if actual.len() != claimed.len() || !deepxplore::diff::differs(&actual, threshold) {
            return false;
        }
        actual.iter().zip(claimed).all(|(a, c)| match (a, c) {
            (Prediction::Class(a), Prediction::Class(c)) => a == c,
            (Prediction::Value(a), Prediction::Value(c)) => {
                deepxplore::diff::direction(*a, threshold)
                    == deepxplore::diff::direction(*c, threshold)
            }
            _ => false,
        })
    }
}

/// Campaign scheduling and persistence knobs.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads (each owns clones of the models). 1 gives a fully
    /// deterministic campaign.
    pub workers: usize,
    /// Epochs to run per [`Campaign::run`] call.
    pub epochs: usize,
    /// Corpus entries scheduled per epoch.
    pub batch_per_epoch: usize,
    /// Seeds grown per batched generator call — the execution tile width
    /// of [`Generator::run_batch_tiled`]. Pure tiling: campaign results
    /// are bit-identical for every width (the CI batch-parity smoke holds
    /// a full campaign to this). The effective tile is capped by
    /// `merge_every`, which fixes the batched call boundaries (and so the
    /// coverage-sync cadence) independently of `batch`.
    pub batch: usize,
    /// Wall-clock budget for one [`Campaign::run`] call; `None` is
    /// unbounded.
    pub duration: Option<Duration>,
    /// Stop once mean global coverage reaches this level.
    pub desired_coverage: Option<f32>,
    /// Directory for JSONL checkpoints; `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Jobs a worker runs between coverage syncs with the global union.
    pub merge_every: usize,
    /// Corpus size cap (initial seeds are never evicted).
    pub max_corpus: usize,
    /// Master RNG seed; scheduling and every worker derive from it.
    pub seed: u64,
    /// How corpus energy responds to step outcomes.
    pub energy: EnergyModel,
    /// Where campaign metrics land. The default is a fresh private
    /// registry (isolated, e.g. under parallel tests); the CLI injects
    /// [`dx_telemetry::global()`] so `--metrics-addr` serves them.
    pub registry: MetricsRegistry,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            epochs: 4,
            batch_per_epoch: 16,
            batch: 4,
            duration: None,
            desired_coverage: None,
            checkpoint_dir: None,
            merge_every: 4,
            max_corpus: 4096,
            seed: 42,
            energy: EnergyModel::Classic,
            registry: MetricsRegistry::new(),
        }
    }
}

/// Cached registry handles for the campaign's per-epoch updates, so the
/// epoch loop never touches the registry's name lookup.
struct EngineMetrics {
    seeds: Arc<Counter>,
    diffs: Arc<Counter>,
    epoch_seconds: Arc<Histogram>,
    lock_wait: Arc<Histogram>,
    corpus_size: Arc<Gauge>,
    energy_min: Arc<Gauge>,
    energy_mean: Arc<Gauge>,
    energy_max: Arc<Gauge>,
    /// `dx_new_units_total{component=...}`, in the metric's component
    /// order.
    new_units: Vec<Arc<Counter>>,
    phase_seconds: Vec<Arc<Histogram>>,
}

impl EngineMetrics {
    fn new(registry: &MetricsRegistry, metric: &dx_coverage::MetricSpec) -> Self {
        registry.set_help("dx_seeds_total", "Seed steps processed");
        registry.set_help("dx_diffs_total", "Difference-inducing inputs found");
        registry.set_help("dx_new_units_total", "Coverage units newly covered, per component");
        registry.set_help("dx_epoch_seconds", "Wall-clock time per campaign epoch");
        registry.set_help("dx_lock_wait_seconds", "Worker wait for the global coverage lock");
        registry.set_help("dx_phase_seconds", "Generator hot-path time per phase");
        registry.set_help("dx_corpus_size", "Corpus entries");
        registry.set_help("dx_corpus_energy", "Corpus energy distribution (min/mean/max)");
        let epoch_bounds: Vec<f64> = TIME_BUCKETS.iter().map(|b| b * 100.0).collect();
        Self {
            seeds: registry.counter("dx_seeds_total", &[]),
            diffs: registry.counter("dx_diffs_total", &[]),
            epoch_seconds: registry.histogram("dx_epoch_seconds", &[], &epoch_bounds),
            lock_wait: registry.histogram("dx_lock_wait_seconds", &[], &TIME_BUCKETS),
            corpus_size: registry.gauge("dx_corpus_size", &[]),
            energy_min: registry.gauge("dx_corpus_energy", &[("stat", "min")]),
            energy_mean: registry.gauge("dx_corpus_energy", &[("stat", "mean")]),
            energy_max: registry.gauge("dx_corpus_energy", &[("stat", "max")]),
            new_units: metric
                .components
                .iter()
                .map(|c| registry.counter("dx_new_units_total", &[("component", &c.to_string())]))
                .collect(),
            phase_seconds: Phase::ALL
                .iter()
                .map(|p| {
                    registry.histogram("dx_phase_seconds", &[("phase", p.name())], &TIME_BUCKETS)
                })
                .collect(),
        }
    }
}

/// A difference-inducing input found by the campaign.
#[derive(Clone, Debug)]
pub struct FoundDiff {
    /// Corpus entry the difference was grown from.
    pub seed_id: usize,
    /// Epoch in which it was found.
    pub epoch: usize,
    /// The difference-inducing input, batched `[1, ...]`.
    pub input: Tensor,
    /// Each model's prediction on the input.
    pub predictions: Vec<Prediction>,
    /// Gradient-ascent iterations taken.
    pub iterations: usize,
    /// The model Algorithm 1 pushed away.
    pub target_model: usize,
}

/// A long-running, multi-worker, coverage-guided fuzzing campaign.
///
/// Determinism: with `workers = 1` a campaign is a pure function of its
/// configuration and initial seeds. With several workers, per-worker
/// generation stays deterministic but the interleaving of coverage syncs
/// (and therefore neuron picks) depends on thread timing. Checkpoints
/// persist every worker's generator RNG state, so a resumed single-worker
/// campaign is bit-identical to the uninterrupted run; resuming a
/// checkpoint without RNG states (written before they were persisted)
/// re-derives the streams from the master seed and is merely
/// deterministic given `(config, checkpoint)`.
pub struct Campaign {
    config: CampaignConfig,
    workers: Vec<Generator>,
    global: Vec<CoverageSignal>,
    corpus: Corpus,
    report: CampaignReport,
    diffs: Vec<FoundDiff>,
    metrics: EngineMetrics,
    epochs_done: usize,
    /// The directory this campaign last checkpointed to in this process.
    /// Stats/diffs appends are only safe into our own earlier write; any
    /// other directory gets a full rewrite first.
    checkpointed_dir: Option<std::path::PathBuf>,
}

impl Campaign {
    /// Creates a campaign over initial seeds (rows of `seeds`).
    ///
    /// # Panics
    ///
    /// Panics on zero workers, zero epochs/batch, an empty seed tensor, or
    /// an invalid model suite (fewer than two models, mismatched shapes).
    pub fn new(suite: ModelSuite, seeds: &Tensor, config: CampaignConfig) -> Self {
        assert!(seeds.shape()[0] > 0, "campaign needs at least one seed");
        let inputs = (0..seeds.shape()[0]).map(|i| gather_rows(seeds, &[i])).collect();
        let corpus = Corpus::new(inputs, config.max_corpus).with_energy_model(config.energy);
        Self::with_corpus(
            suite,
            config,
            corpus,
            CampaignReport::default(),
            Vec::new(),
            None,
            0,
            Vec::new(),
        )
    }

    /// Resumes a campaign from the checkpoint in `config.checkpoint_dir`.
    ///
    /// # Errors
    ///
    /// Fails when the directory is missing or its checkpoint files do not
    /// parse.
    pub fn resume(suite: ModelSuite, config: CampaignConfig) -> io::Result<Self> {
        let dir = config.checkpoint_dir.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "resume needs a checkpoint dir")
        })?;
        Self::resume_from(suite, &dir, config)
    }

    /// Resumes from the checkpoint in `dir`, while future checkpoints go to
    /// `config.checkpoint_dir` — which may differ, forking the campaign.
    ///
    /// # Errors
    ///
    /// Fails when `dir` is missing or its checkpoint files do not parse.
    pub fn resume_from(
        suite: ModelSuite,
        dir: &std::path::Path,
        mut config: CampaignConfig,
    ) -> io::Result<Self> {
        let state = checkpoint::load(dir)?;
        // The metric is part of the campaign's identity too: a multisection
        // hit-set cannot seed a neuron campaign or vice versa.
        if state.signal.metric != suite.signal.metric {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint metric `{}` does not match the configured `{}`",
                    state.signal.metric, suite.signal.metric
                ),
            ));
        }
        // Checkpointed profiles are authoritative: restoring them (rather
        // than re-priming) keeps a resumed multisection campaign
        // bit-identical even if the training data shifted underneath.
        let suite = state.signal.restore_profiles(suite)?;
        // The master seed is part of the campaign's identity: scheduling and
        // worker streams all derive from it, so a resume continues with the
        // seed the campaign was started with, not whatever the new config
        // happens to carry.
        config.seed = state.campaign_seed;
        let corpus =
            Corpus::from_entries(state.corpus, config.max_corpus).with_energy_model(config.energy);
        let report = CampaignReport { epochs: state.epochs, workers: config.workers };
        Ok(Self::with_corpus(
            suite,
            config,
            corpus,
            report,
            state.diffs,
            state.coverage,
            state.epochs_done,
            state.worker_rng,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn with_corpus(
        suite: ModelSuite,
        config: CampaignConfig,
        corpus: Corpus,
        mut report: CampaignReport,
        diffs: Vec<FoundDiff>,
        coverage: Option<Vec<Vec<bool>>>,
        epochs_done: usize,
        worker_rng: Vec<[u64; 4]>,
    ) -> Self {
        assert!(config.workers >= 1, "campaign needs at least one worker");
        assert!(config.epochs >= 1, "campaign needs at least one epoch");
        assert!(config.batch_per_epoch >= 1, "campaign needs a nonzero batch");
        let signals = suite.signal.build(&suite.models);
        let mut workers: Vec<Generator> = (0..config.workers)
            .map(|w| {
                Generator::with_signals(
                    suite.models.clone(),
                    suite.kind,
                    suite.hp,
                    suite.constraint.clone(),
                    signals.clone(),
                    rng::derive_seed(config.seed, 1 + w as u64),
                )
            })
            .collect();
        if worker_rng.len() == workers.len() {
            // Continue the checkpointed streams exactly instead of
            // re-deriving them from the master seed.
            for (w, state) in workers.iter_mut().zip(&worker_rng) {
                w.set_rng_state(*state);
            }
        }
        let mut global = signals;
        let masks_fit = coverage.as_ref().is_some_and(|masks| {
            masks.len() == global.len()
                && masks.iter().zip(global.iter()).all(|(m, g)| m.len() == g.total())
        });
        if let Some(masks) = coverage.as_ref().filter(|_| masks_fit) {
            // The exact global union, persisted by the checkpoint.
            for (g, mask) in global.iter_mut().zip(masks) {
                g.set_covered_mask(mask);
            }
        } else if epochs_done > 0 {
            // No (or incompatible) persisted bitmaps — an older checkpoint,
            // or the coverage config changed. Rebuild a lower bound by
            // replaying the surviving corpus inputs through the metric.
            let mut replay = global.clone();
            for entry in corpus.entries() {
                for ((model, tracker), g) in
                    suite.models.iter().zip(replay.iter_mut()).zip(global.iter_mut())
                {
                    tracker.reset();
                    tracker.update(&model.forward(&entry.input));
                    g.merge(tracker);
                }
            }
        }
        report.workers = config.workers;
        let metrics = EngineMetrics::new(&config.registry, &suite.signal.metric);
        let mut campaign = Self {
            config,
            workers,
            global,
            corpus,
            report,
            diffs,
            metrics,
            epochs_done,
            checkpointed_dir: None,
        };
        if campaign.epochs_done > 0 {
            for w in &mut campaign.workers {
                w.adopt_coverage(&campaign.global);
            }
        }
        campaign
    }

    /// The corpus in its current state.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// All difference-inducing inputs found so far.
    pub fn diffs(&self) -> &[FoundDiff] {
        &self.diffs
    }

    /// The campaign report so far.
    pub fn report(&self) -> &CampaignReport {
        &self.report
    }

    /// Epochs completed (including resumed-from epochs).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// The campaign's master seed (for a resumed campaign, the seed it was
    /// originally started with).
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Where this campaign last wrote a checkpoint in this process, if it
    /// has written one at all.
    pub fn last_checkpoint_dir(&self) -> Option<&std::path::Path> {
        self.checkpointed_dir.as_deref()
    }

    /// Per-model global coverage.
    pub fn coverage(&self) -> Vec<f32> {
        self.global.iter().map(|t| t.coverage()).collect()
    }

    /// Covered units in the global union, summed across models — under
    /// whatever metric (spec) the campaign steers by, so composite
    /// campaigns count every component's units.
    pub fn covered_units(&self) -> usize {
        self.global.iter().map(CoverageSignal::covered_count).sum()
    }

    /// Mean global coverage per metric component (one entry for simple
    /// metrics).
    pub fn component_coverage(&self) -> Vec<f32> {
        dx_coverage::mean_component_coverage(&self.global)
    }

    /// Mean global coverage across models.
    pub fn mean_coverage(&self) -> f32 {
        let c = self.coverage();
        c.iter().sum::<f32>() / c.len() as f32
    }

    /// Runs up to `config.epochs` epochs, stopping early on the duration
    /// budget, the coverage target, or corpus exhaustion. Checkpoints after
    /// every epoch when a checkpoint directory is configured.
    ///
    /// # Errors
    ///
    /// Fails only on checkpoint I/O errors; the in-memory campaign state
    /// stays valid either way.
    pub fn run(&mut self) -> io::Result<&CampaignReport> {
        let started = Instant::now();
        let end_epoch = self.epochs_done + self.config.epochs;
        while self.epochs_done < end_epoch && self.can_step() {
            if let Some(budget) = self.config.duration {
                if started.elapsed() >= budget {
                    break;
                }
            }
            self.step()?;
        }
        Ok(&self.report)
    }

    /// True when another [`step`](Self::step) can make progress: the
    /// corpus is not exhausted and the coverage target (when set) is
    /// still unmet.
    pub fn can_step(&self) -> bool {
        !self.corpus.all_exhausted()
            && self.config.desired_coverage.is_none_or(|target| self.mean_coverage() < target)
    }

    /// Runs exactly one epoch, then checkpoints when a checkpoint
    /// directory is configured — the externally-driven core of
    /// [`run`](Self::run). Ignores the epoch-count and duration budgets:
    /// a driver that steps the campaign as a state machine (the service
    /// daemon's scheduler, say) owns pacing, pause, and stop itself.
    ///
    /// # Errors
    ///
    /// Fails only on checkpoint I/O errors; the in-memory campaign
    /// state stays valid either way.
    pub fn step(&mut self) -> io::Result<()> {
        self.run_epoch();
        if let Some(dir) = self.config.checkpoint_dir.clone() {
            self.checkpoint(&dir)?;
        }
        Ok(())
    }

    /// Writes the full campaign state to `dir` (JSONL corpus/stats/diffs
    /// plus coverage bitmaps and a meta file). The first write into a
    /// directory this run replaces any stale files there; subsequent
    /// writes into the same directory append the new stats/diffs lines.
    pub fn checkpoint(&mut self, dir: &std::path::Path) -> io::Result<()> {
        let meta = checkpoint::Meta {
            epochs_done: self.epochs_done,
            campaign_seed: self.config.seed,
            workers: self.config.workers,
            worker_rng: self.workers.iter().map(Generator::rng_state).collect(),
        };
        let masks: Vec<Vec<bool>> = self.global.iter().map(CoverageSignal::covered_mask).collect();
        let signal = checkpoint::SignalCheckpoint::of(&self.global);
        let append = self.checkpointed_dir.as_deref() == Some(dir);
        checkpoint::save(
            dir,
            &self.corpus,
            &self.report,
            &self.diffs,
            &masks,
            &signal,
            &meta,
            append,
        )?;
        self.checkpointed_dir = Some(dir.to_path_buf());
        Ok(())
    }

    fn run_epoch(&mut self) {
        let epoch = self.epochs_done;
        let started = Instant::now();
        let _epoch_span = Span::new(self.metrics.epoch_seconds.clone());
        // The epoch scheduler RNG derives from (campaign seed, epoch), so
        // scheduling is independent of where a resume happened.
        let mut sched_rng =
            rng::rng(rng::derive_seed(self.config.seed, 0x5ced_0000 + epoch as u64));
        let ids = self.corpus.schedule(self.config.batch_per_epoch, &mut sched_rng);
        let n_workers = self.workers.len();
        let mut assignments: Vec<Vec<(usize, Tensor)>> = vec![Vec::new(); n_workers];
        for (i, &id) in ids.iter().enumerate() {
            let Some(entry) = self.corpus.get(id) else { continue };
            assignments[i % n_workers].push((id, entry.input.clone()));
        }
        let covered_before = self.covered_units();
        let merge_every = self.config.merge_every.max(1);
        let batch = self.config.batch.max(1);
        let global = Mutex::new(std::mem::take(&mut self.global));
        let per_worker: Vec<Vec<(usize, SeedRun)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .zip(assignments)
                .map(|(worker, jobs)| {
                    let global = &global;
                    let lock_wait = self.metrics.lock_wait.clone();
                    scope.spawn(move || {
                        // Sync points are rare (every merge_every jobs),
                        // so observing the shared histogram directly is
                        // fine — only the per-iterate loop needs the
                        // non-atomic accumulator.
                        let sync = |worker: &mut Generator| {
                            let waited = Instant::now();
                            // Poison-tolerant: coverage union updates are
                            // idempotent bit-ors, safe to resume after a
                            // sibling worker panicked.
                            let mut union =
                                global.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            lock_wait.observe(waited.elapsed().as_secs_f64());
                            worker.sync_coverage_into(&mut union);
                            worker.adopt_coverage(&union);
                        };
                        // Chunk by merge_every — each chunk is one batched
                        // generator call (the batch-width invariance
                        // interval) followed by a coverage sync, so both
                        // the sync cadence and the results are independent
                        // of the tile width.
                        let mut out = Vec::with_capacity(jobs.len());
                        for chunk in jobs.chunks(merge_every) {
                            let ids: Vec<usize> = chunk.iter().map(|(id, _)| *id).collect();
                            let stacked = stack_inputs(chunk);
                            let runs = worker.run_batch_tiled(&ids, &stacked, batch);
                            out.extend(ids.into_iter().zip(runs));
                            sync(worker);
                        }
                        if jobs.is_empty() {
                            sync(worker);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                // analysis: allow(panic): a panicked in-process worker is
                // unrecoverable mid-epoch; std::thread::scope re-raises the
                // panic at scope exit regardless of how join is handled
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });
        self.global = global.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Fold results back in scheduling order (round-robin inverse), so
        // corpus mutation order — and therefore child ids — is independent
        // of worker count.
        let mut cursors: Vec<std::vec::IntoIter<(usize, SeedRun)>> =
            per_worker.into_iter().map(Vec::into_iter).collect();
        let mut diffs_found = 0;
        let mut iterations = 0;
        // The rarity energy model credits steps against the union as it
        // stood when they ran (one epoch's granularity), per metric
        // component — a boundary corner found while the section union is
        // nearly saturated still earns the full rarity multiplier of the
        // (much emptier) boundary component.
        let global_coverage = dx_coverage::mean_component_coverage(&self.global);
        let mut new_by_component = vec![0usize; self.metrics.new_units.len()];
        for i in 0..ids.len() {
            let Some((id, run)) = cursors[i % n_workers].next() else { continue };
            iterations += run.iterations;
            for (total, newly) in new_by_component.iter_mut().zip(&run.newly_by_component) {
                *total += newly;
            }
            let diff_test = if run.found_difference() { run.test.as_ref() } else { None };
            if let Some(test) = diff_test {
                diffs_found += 1;
                self.diffs.push(FoundDiff {
                    seed_id: id,
                    epoch,
                    input: test.input.clone(),
                    predictions: test.predictions.clone(),
                    iterations: test.iterations,
                    target_model: test.target_model,
                });
            }
            self.corpus.absorb(id, &run, &global_coverage);
        }
        self.metrics.seeds.inc_by(ids.len() as u64);
        self.metrics.diffs.inc_by(diffs_found as u64);
        for (counter, &n) in self.metrics.new_units.iter().zip(&new_by_component) {
            counter.inc_by(n as u64);
        }
        // Fold each worker's hot-path phase deltas into the registry.
        let mut phases = PhaseAccum::new();
        for worker in &mut self.workers {
            phases.merge(&worker.take_phase_stats());
        }
        for (hist, phase) in self.metrics.phase_seconds.iter().zip(Phase::ALL) {
            hist.merge_local(phases.get(phase));
        }
        self.metrics.corpus_size.set(self.corpus.len() as f64);
        let energies: Vec<f64> =
            self.corpus.entries().iter().map(|e| f64::from(e.energy)).collect();
        if !energies.is_empty() {
            let sum: f64 = energies.iter().sum();
            self.metrics.energy_min.set(energies.iter().copied().fold(f64::INFINITY, f64::min));
            self.metrics.energy_mean.set(sum / energies.len() as f64);
            self.metrics.energy_max.set(energies.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
        let covered_after = self.covered_units();
        emit(
            Level::Debug,
            "campaign",
            "epoch_done",
            &[
                ("epoch", (epoch as u64).into()),
                ("seeds_run", (ids.len() as u64).into()),
                ("diffs_found", (diffs_found as u64).into()),
                ("newly_covered", ((covered_after - covered_before) as u64).into()),
                ("corpus_len", (self.corpus.len() as u64).into()),
                ("elapsed", started.elapsed().into()),
            ],
        );
        self.report.epochs.push(EpochStats {
            epoch,
            seeds_run: ids.len(),
            diffs_found,
            iterations,
            newly_covered: covered_after - covered_before,
            mean_coverage: self.mean_coverage(),
            // `self.global` has not changed since `global_coverage` was
            // computed (absorb only touches the corpus), so the energy
            // model's saturation view and the reported column agree.
            component_coverage: global_coverage,
            corpus_len: self.corpus.len(),
            elapsed: started.elapsed(),
        });
        self.epochs_done += 1;
    }
}

/// Stacks a chunk of `[1, ...]` corpus inputs into one `[C, ...]` batch for
/// the generator's batched path.
fn stack_inputs(chunk: &[(usize, Tensor)]) -> Tensor {
    let mut data = Vec::with_capacity(chunk.len() * chunk[0].1.len());
    for (_, input) in chunk {
        data.extend_from_slice(input.data());
    }
    let mut shape = chunk[0].1.shape().to_vec();
    shape[0] = chunk.len();
    Tensor::from_vec(data, &shape)
}
