//! JSONL campaign persistence.
//!
//! A checkpoint directory holds five files, updated after every epoch:
//!
//! | file | contents | update |
//! |---|---|---|
//! | `corpus.jsonl` | one corpus entry per line, inputs inline | atomic rewrite |
//! | `stats.jsonl` | one epoch's statistics per line | append |
//! | `diffs.jsonl` | one found difference per line, inputs inline | append |
//! | `coverage.json` | per-model global covered-neuron bitmaps | atomic rewrite |
//! | `meta.json` | epochs done, campaign seed, worker count | atomic rewrite |
//!
//! Stats and diffs are append-only between epochs, so only new lines are
//! written (a line-count mismatch falls back to a full rewrite); the
//! mutable files are written tmp-then-rename. Floats round-trip exactly
//! (shortest-representation `Display`), so a resumed corpus is
//! bit-identical to the checkpointed one.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use deepxplore::diff::Prediction;
use dx_tensor::Tensor;

use crate::corpus::{Corpus, CorpusEntry};
use crate::engine::FoundDiff;
use crate::json::{build, parse, Json};
use crate::report::{CampaignReport, EpochStats};

/// Campaign-level checkpoint metadata.
#[derive(Clone, Debug)]
pub struct Meta {
    /// Epochs completed when the checkpoint was written.
    pub epochs_done: usize,
    /// The campaign's master seed.
    pub campaign_seed: u64,
    /// Worker count the campaign ran with.
    pub workers: usize,
}

/// Everything a checkpoint directory holds, parsed.
pub struct CampaignState {
    /// Corpus entries in checkpoint order.
    pub corpus: Vec<CorpusEntry>,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Found differences.
    pub diffs: Vec<FoundDiff>,
    /// Per-model global covered-neuron bitmaps (`None` in checkpoints
    /// written before coverage persistence existed).
    pub coverage: Option<Vec<Vec<bool>>>,
    /// Epochs completed.
    pub epochs_done: usize,
    /// The campaign's master seed.
    pub campaign_seed: u64,
}

/// Writes a full campaign checkpoint into `dir`.
///
/// # Errors
///
/// Any filesystem failure.
pub fn save(
    dir: &Path,
    corpus: &Corpus,
    report: &CampaignReport,
    diffs: &[FoundDiff],
    coverage: &[Vec<bool>],
    meta: &Meta,
    append: bool,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    write_atomic(&dir.join("corpus.jsonl"), &jsonl(corpus.entries().iter().map(entry_json)))?;
    let stats_lines: Vec<Json> = report.epochs.iter().map(epoch_json).collect();
    let diff_lines: Vec<Json> = diffs.iter().map(diff_json).collect();
    if append {
        append_jsonl(&dir.join("stats.jsonl"), &stats_lines)?;
        append_jsonl(&dir.join("diffs.jsonl"), &diff_lines)?;
    } else {
        // First write into this directory this run: any existing lines may
        // belong to an unrelated earlier campaign, so rewrite from scratch.
        write_atomic(&dir.join("stats.jsonl"), &jsonl_slice(&stats_lines))?;
        write_atomic(&dir.join("diffs.jsonl"), &jsonl_slice(&diff_lines))?;
    }
    let masks = Json::Arr(
        coverage
            .iter()
            .map(|m| Json::Str(m.iter().map(|&c| if c { '1' } else { '0' }).collect()))
            .collect(),
    );
    let coverage_json = build::obj(vec![("version", build::int(1)), ("masks", masks)]);
    write_atomic(&dir.join("coverage.json"), &(coverage_json.to_string() + "\n"))?;
    let meta_json = build::obj(vec![
        ("version", build::int(1)),
        ("epochs_done", build::int(meta.epochs_done)),
        // As a string: JSON numbers go through f64, which cannot represent
        // u64 seeds above 2^53 exactly.
        ("campaign_seed", build::str(&meta.campaign_seed.to_string())),
        ("workers", build::int(meta.workers)),
    ]);
    write_atomic(&dir.join("meta.json"), &(meta_json.to_string() + "\n"))
}

/// Writes only the lines past what's already on disk. Stats and diffs are
/// append-only across a campaign, so this keeps per-epoch checkpoint cost
/// proportional to the epoch's new results, not the accumulated history.
/// Only sound when the caller knows the on-disk prefix is its own earlier
/// write ([`save`] with `append = false` establishes that); on a count
/// mismatch (more lines on disk than in memory) the file is rewritten.
fn append_jsonl(path: &Path, items: &[Json]) -> io::Result<()> {
    let existing = match fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    if existing > items.len() {
        return write_atomic(path, &jsonl_slice(items));
    }
    if existing == items.len() {
        return Ok(());
    }
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    let tail = jsonl_slice(&items[existing..]);
    f.write_all(tail.as_bytes())?;
    f.sync_all()
}

fn jsonl_slice(items: &[Json]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&item.to_string());
        out.push('\n');
    }
    out
}

/// Loads a checkpoint directory written by [`save`].
///
/// # Errors
///
/// Missing files or malformed JSON.
pub fn load(dir: &Path) -> io::Result<CampaignState> {
    let meta = parse_doc(&fs::read_to_string(dir.join("meta.json"))?)?;
    let corpus = read_jsonl(&dir.join("corpus.jsonl"))?
        .iter()
        .map(entry_from_json)
        .collect::<io::Result<Vec<_>>>()?;
    let epochs = read_jsonl(&dir.join("stats.jsonl"))?
        .iter()
        .map(epoch_from_json)
        .collect::<io::Result<Vec<_>>>()?;
    let diffs = read_jsonl(&dir.join("diffs.jsonl"))?
        .iter()
        .map(diff_from_json)
        .collect::<io::Result<Vec<_>>>()?;
    let coverage = match fs::read_to_string(dir.join("coverage.json")) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
        Ok(text) => {
            let doc = parse_doc(&text)?;
            Some(
                doc.get("masks")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("coverage.masks"))?
                    .iter()
                    .map(|m| {
                        m.as_str()
                            .map(|s| s.chars().map(|c| c == '1').collect::<Vec<bool>>())
                            .ok_or_else(|| bad("coverage mask"))
                    })
                    .collect::<io::Result<Vec<_>>>()?,
            )
        }
    };
    Ok(CampaignState {
        corpus,
        epochs,
        diffs,
        coverage,
        epochs_done: field_usize(&meta, "epochs_done")?,
        campaign_seed: meta
            .get("campaign_seed")
            .and_then(|v| v.as_str().and_then(|s| s.parse().ok()).or_else(|| v.as_u64()))
            .ok_or_else(|| bad("meta.campaign_seed"))?,
    })
}

fn jsonl<'a>(lines: impl Iterator<Item = Json> + 'a) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

fn read_jsonl(path: &Path) -> io::Result<Vec<Json>> {
    fs::read_to_string(path)?
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_doc)
        .collect()
}

fn parse_doc(text: &str) -> io::Result<Json> {
    parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint missing/invalid {what}"))
}

fn field_usize(v: &Json, key: &str) -> io::Result<usize> {
    v.get(key).and_then(Json::as_usize).ok_or_else(|| bad(key))
}

fn field_f32(v: &Json, key: &str) -> io::Result<f32> {
    v.get(key).and_then(Json::as_f32).ok_or_else(|| bad(key))
}

fn tensor_json(t: &Tensor) -> (Json, Json) {
    (build::ints(t.shape()), build::f32s(t.data()))
}

fn tensor_from_json(v: &Json) -> io::Result<Tensor> {
    let shape: Vec<usize> = v
        .get("shape")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("shape"))?
        .iter()
        .map(|s| s.as_usize().ok_or_else(|| bad("shape element")))
        .collect::<io::Result<_>>()?;
    let data: Vec<f32> = v
        .get("data")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("data"))?
        .iter()
        .map(|d| d.as_f32().ok_or_else(|| bad("data element")))
        .collect::<io::Result<_>>()?;
    if data.len() != shape.iter().product::<usize>() {
        return Err(bad("tensor data length"));
    }
    Ok(Tensor::from_vec(data, &shape))
}

fn entry_json(e: &CorpusEntry) -> Json {
    let (shape, data) = tensor_json(&e.input);
    build::obj(vec![
        ("id", build::int(e.id)),
        ("parent", build::opt_int(e.parent)),
        ("depth", build::int(e.depth)),
        ("energy", build::num(e.energy)),
        ("times_fuzzed", build::int(e.times_fuzzed)),
        ("diffs_found", build::int(e.diffs_found)),
        ("new_coverage", build::int(e.new_coverage)),
        ("exhausted", Json::Bool(e.exhausted)),
        ("shape", shape),
        ("data", data),
    ])
}

fn entry_from_json(v: &Json) -> io::Result<CorpusEntry> {
    Ok(CorpusEntry {
        id: field_usize(v, "id")?,
        parent: match v.get("parent") {
            Some(Json::Null) | None => None,
            Some(p) => Some(p.as_usize().ok_or_else(|| bad("parent"))?),
        },
        depth: field_usize(v, "depth")?,
        input: tensor_from_json(v)?,
        energy: field_f32(v, "energy")?,
        times_fuzzed: field_usize(v, "times_fuzzed")?,
        diffs_found: field_usize(v, "diffs_found")?,
        new_coverage: field_usize(v, "new_coverage")?,
        exhausted: v.get("exhausted").and_then(Json::as_bool).unwrap_or(false),
    })
}

fn epoch_json(e: &EpochStats) -> Json {
    build::obj(vec![
        ("epoch", build::int(e.epoch)),
        ("seeds_run", build::int(e.seeds_run)),
        ("diffs_found", build::int(e.diffs_found)),
        ("iterations", build::int(e.iterations)),
        ("newly_covered", build::int(e.newly_covered)),
        ("mean_coverage", build::num(e.mean_coverage)),
        ("corpus_len", build::int(e.corpus_len)),
        ("elapsed_us", Json::Num(e.elapsed.as_micros() as f64)),
        ("seeds_per_sec", Json::Num(e.seeds_per_sec())),
        ("diffs_per_sec", Json::Num(e.diffs_per_sec())),
    ])
}

fn epoch_from_json(v: &Json) -> io::Result<EpochStats> {
    Ok(EpochStats {
        epoch: field_usize(v, "epoch")?,
        seeds_run: field_usize(v, "seeds_run")?,
        diffs_found: field_usize(v, "diffs_found")?,
        iterations: field_usize(v, "iterations")?,
        newly_covered: field_usize(v, "newly_covered")?,
        mean_coverage: field_f32(v, "mean_coverage")?,
        corpus_len: field_usize(v, "corpus_len")?,
        elapsed: std::time::Duration::from_micros(
            v.get("elapsed_us").and_then(Json::as_u64).ok_or_else(|| bad("elapsed_us"))?,
        ),
    })
}

fn diff_json(d: &FoundDiff) -> Json {
    let (shape, data) = tensor_json(&d.input);
    let predictions = Json::Arr(
        d.predictions
            .iter()
            .map(|p| match p {
                Prediction::Class(c) => build::obj(vec![("class", build::int(*c))]),
                Prediction::Value(x) => build::obj(vec![("value", build::num(*x))]),
            })
            .collect(),
    );
    build::obj(vec![
        ("seed_id", build::int(d.seed_id)),
        ("epoch", build::int(d.epoch)),
        ("iterations", build::int(d.iterations)),
        ("target_model", build::int(d.target_model)),
        ("predictions", predictions),
        ("shape", shape),
        ("data", data),
    ])
}

fn diff_from_json(v: &Json) -> io::Result<FoundDiff> {
    let predictions = v
        .get("predictions")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("predictions"))?
        .iter()
        .map(|p| {
            if let Some(c) = p.get("class").and_then(Json::as_usize) {
                Ok(Prediction::Class(c))
            } else if let Some(x) = p.get("value").and_then(Json::as_f32) {
                Ok(Prediction::Value(x))
            } else {
                Err(bad("prediction"))
            }
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(FoundDiff {
        seed_id: field_usize(v, "seed_id")?,
        epoch: field_usize(v, "epoch")?,
        input: tensor_from_json(v)?,
        predictions,
        iterations: field_usize(v, "iterations")?,
        target_model: field_usize(v, "target_model")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CampaignReport;
    use dx_tensor::rng;
    use std::time::Duration;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dx_campaign_ckpt_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_masks() -> Vec<Vec<bool>> {
        vec![vec![true, false, true, true], vec![false, false, true, false]]
    }

    fn sample_state() -> (Corpus, CampaignReport, Vec<FoundDiff>, Meta) {
        let seeds = (0..3)
            .map(|i| rng::uniform(&mut rng::rng(i), &[1, 6], 0.0, 1.0))
            .collect();
        let mut corpus = Corpus::new(seeds, 64);
        let run = deepxplore::SeedRun {
            test: None,
            preexisting: false,
            iterations: 4,
            newly_covered: 2,
            corpus_candidate: Some(rng::uniform(&mut rng::rng(9), &[1, 6], 0.0, 1.0)),
        };
        corpus.absorb(1, &run);
        let report = CampaignReport {
            epochs: vec![EpochStats {
                epoch: 0,
                seeds_run: 3,
                diffs_found: 1,
                iterations: 12,
                newly_covered: 5,
                mean_coverage: 0.375,
                corpus_len: 4,
                elapsed: Duration::from_micros(123_456),
            }],
            workers: 2,
        };
        let diffs = vec![FoundDiff {
            seed_id: 1,
            epoch: 0,
            input: rng::uniform(&mut rng::rng(11), &[1, 6], 0.0, 1.0),
            predictions: vec![Prediction::Class(0), Prediction::Class(2)],
            iterations: 7,
            target_model: 1,
        }];
        let meta = Meta { epochs_done: 1, campaign_seed: 0xfeed, workers: 2 };
        (corpus, report, diffs, meta)
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp_dir("round_trip");
        let (corpus, report, diffs, meta) = sample_state();
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &meta, false).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.coverage, Some(sample_masks()));
        assert_eq!(state.epochs_done, 1);
        assert_eq!(state.campaign_seed, 0xfeed);
        assert_eq!(state.corpus.len(), corpus.len());
        for (a, b) in state.corpus.iter().zip(corpus.entries()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.input, b.input, "input of entry {} changed", a.id);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
            assert_eq!(a.exhausted, b.exhausted);
        }
        assert_eq!(state.epochs.len(), 1);
        assert_eq!(state.epochs[0].elapsed, Duration::from_micros(123_456));
        assert_eq!(state.diffs.len(), 1);
        assert_eq!(state.diffs[0].predictions, diffs[0].predictions);
        assert_eq!(state.diffs[0].input, diffs[0].input);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_rerunnable_and_appends_only_new_lines() {
        let dir = tmp_dir("rerun");
        let (corpus, mut report, mut diffs, meta) = sample_state();
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &meta, false).unwrap();
        // Same state again: stats/diffs must not duplicate.
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &meta, true).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.epochs.len(), 1);
        assert_eq!(state.diffs.len(), 1);
        // One more epoch and diff: exactly one new line each.
        report.epochs.push(EpochStats { epoch: 1, ..report.epochs[0].clone() });
        diffs.push(diffs[0].clone());
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &meta, true).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.epochs.len(), 2);
        assert_eq!(state.diffs.len(), 2);
        assert_eq!(state.epochs[1].epoch, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_rewrites_when_disk_has_more_lines() {
        let dir = tmp_dir("foreign");
        let (corpus, report, diffs, meta) = sample_state();
        fs::create_dir_all(&dir).unwrap();
        // A foreign stats file with more lines than the campaign knows.
        fs::write(dir.join("stats.jsonl"), "{}\n{}\n{}\n{}\n{}\n").unwrap();
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &meta, false).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.epochs.len(), report.epochs.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_tolerates_missing_coverage_file() {
        let dir = tmp_dir("no_coverage");
        let (corpus, report, diffs, meta) = sample_state();
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &meta, false).unwrap();
        fs::remove_file(dir.join("coverage.json")).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.coverage, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_corrupt_checkpoint() {
        let dir = tmp_dir("corrupt");
        let (corpus, report, diffs, meta) = sample_state();
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &meta, false).unwrap();
        fs::write(dir.join("corpus.jsonl"), "{not json}\n").unwrap();
        assert!(load(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load(Path::new("/nonexistent/dx-campaign")).is_err());
    }
}
