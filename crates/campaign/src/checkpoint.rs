//! JSONL campaign persistence.
//!
//! A checkpoint directory holds five files, updated after every epoch:
//!
//! | file | contents | update |
//! |---|---|---|
//! | `corpus.jsonl` | one corpus entry per line, inputs inline | atomic rewrite |
//! | `stats.jsonl` | one epoch's statistics per line | append |
//! | `diffs.jsonl` | one found difference per line, inputs inline | append |
//! | `coverage.json` | metric spec (composite-capable, v3), per-model covered-unit bitmaps in the combined flat space, and (profile-based metrics) neuron profiles | atomic rewrite |
//! | `meta.json` | epochs done, campaign seed, workers, worker RNG states | atomic rewrite |
//!
//! (The distributed campaign adds a sixth, `dist.json`, for lease state —
//! see `dx-dist`; this module ignores it, so a dist checkpoint resumes
//! fine as a plain in-process campaign.)
//!
//! Stats and diffs are append-only between epochs, so only new lines are
//! written (a line-count mismatch falls back to a full rewrite); the
//! mutable files are written tmp-then-rename. Floats round-trip exactly
//! (shortest-representation `Display`), so a resumed corpus is
//! bit-identical to the checkpointed one. Value encodings live in
//! [`crate::codec`], shared with the wire protocol.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use crate::codec::{
    bad, diff_from_json, diff_json, entry_from_json, entry_json, epoch_from_json, epoch_json,
    field_usize, parse_doc, ranges_from_json, ranges_json, rng_state_from_json, rng_state_json,
    u64_from_json, u64_json,
};
use crate::corpus::{Corpus, CorpusEntry};
use crate::engine::{FoundDiff, ModelSuite};
use crate::json::{build, Json};
use crate::report::{CampaignReport, EpochStats};
use dx_coverage::{CoverageSignal, MetricKind, MetricSpec, NeuronProfile};

/// Campaign-level checkpoint metadata.
#[derive(Clone, Debug)]
pub struct Meta {
    /// Epochs completed when the checkpoint was written.
    pub epochs_done: usize,
    /// The campaign's master seed.
    pub campaign_seed: u64,
    /// Worker count the campaign ran with.
    pub workers: usize,
    /// Per-worker generator RNG state at checkpoint time, in worker order.
    /// Empty when unknown (older checkpoints); a resume then re-derives
    /// the streams from the master seed instead of continuing them.
    pub worker_rng: Vec<[u64; 4]>,
}

/// The coverage-signal identity persisted alongside the bitmaps: which
/// metric spec (possibly composite) the hit-sets were recorded under,
/// and — for profile-based metrics — the per-model neuron profiles the
/// sections/corners were cut from. Without the profiles a resumed
/// campaign would have to re-prime from training data, which need not
/// reproduce the checkpointed ranges.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalCheckpoint {
    /// The coverage metric spec the campaign steered by.
    pub metric: MetricSpec,
    /// Per-model `(low, high)` profile ranges; empty for the pure neuron
    /// metric. One entry per model — composite components share a profile.
    pub ranges: Vec<(Vec<f32>, Vec<f32>)>,
}

impl SignalCheckpoint {
    /// The neuron-metric checkpoint (no profiles to persist).
    pub fn neuron() -> Self {
        Self { metric: MetricKind::Neuron.into(), ranges: Vec::new() }
    }

    /// Derives the checkpoint from live per-model signals.
    pub fn of(signals: &[CoverageSignal]) -> Self {
        let metric = signals.first().map(CoverageSignal::metric).unwrap_or_default();
        let ranges = signals
            .iter()
            .filter_map(CoverageSignal::profile)
            .map(|p| {
                let (low, high) = p.ranges();
                (low.to_vec(), high.to_vec())
            })
            .collect();
        Self { metric, ranges }
    }

    /// Swaps the suite's profiles for the checkpointed ones (profile-based
    /// metrics only; a no-op when no profiles were persisted).
    ///
    /// # Errors
    ///
    /// `InvalidData` when the persisted ranges do not fit the suite's
    /// models.
    pub fn restore_profiles(&self, mut suite: ModelSuite) -> io::Result<ModelSuite> {
        if self.ranges.is_empty() {
            return Ok(suite);
        }
        if self.ranges.len() != suite.models.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "checkpointed profile count does not match the model count",
            ));
        }
        suite.signal.profiles = suite
            .models
            .iter()
            .zip(&self.ranges)
            .map(|(m, (low, high))| {
                NeuronProfile::restore(
                    m,
                    suite.signal.config.granularity,
                    low.clone(),
                    high.clone(),
                )
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(suite)
    }
}

/// Everything a checkpoint directory holds, parsed.
pub struct CampaignState {
    /// Corpus entries in checkpoint order.
    pub corpus: Vec<CorpusEntry>,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Found differences.
    pub diffs: Vec<FoundDiff>,
    /// Per-model global covered-unit bitmaps (`None` in checkpoints
    /// written before coverage persistence existed).
    pub coverage: Option<Vec<Vec<bool>>>,
    /// Metric identity and multisection profiles (neuron metric with no
    /// profiles for checkpoints written before metrics were persisted).
    pub signal: SignalCheckpoint,
    /// Epochs completed.
    pub epochs_done: usize,
    /// The campaign's master seed.
    pub campaign_seed: u64,
    /// Per-worker generator RNG states (empty in older checkpoints).
    pub worker_rng: Vec<[u64; 4]>,
}

/// Writes a full campaign checkpoint into `dir`.
///
/// # Errors
///
/// Any filesystem failure.
#[allow(clippy::too_many_arguments)]
pub fn save(
    dir: &Path,
    corpus: &Corpus,
    report: &CampaignReport,
    diffs: &[FoundDiff],
    coverage: &[Vec<bool>],
    signal: &SignalCheckpoint,
    meta: &Meta,
    append: bool,
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    write_atomic(&dir.join("corpus.jsonl"), &jsonl(corpus.entries().iter().map(entry_json)))?;
    let stats_lines: Vec<Json> = report.epochs.iter().map(epoch_json).collect();
    let diff_lines: Vec<Json> = diffs.iter().map(diff_json).collect();
    if append {
        append_jsonl(&dir.join("stats.jsonl"), &stats_lines)?;
        append_jsonl(&dir.join("diffs.jsonl"), &diff_lines)?;
    } else {
        // First write into this directory this run: any existing lines may
        // belong to an unrelated earlier campaign, so rewrite from scratch.
        write_atomic(&dir.join("stats.jsonl"), &jsonl_slice(&stats_lines))?;
        write_atomic(&dir.join("diffs.jsonl"), &jsonl_slice(&diff_lines))?;
    }
    let masks = Json::Arr(
        coverage
            .iter()
            .map(|m| Json::Str(m.iter().map(|&c| if c { '1' } else { '0' }).collect()))
            .collect(),
    );
    let mut coverage_fields = vec![
        // v3: the metric field may be a composite spec (`a+b`), and masks
        // then cover the combined component-major unit space.
        ("version", build::int(3)),
        ("metric", build::str(&signal.metric.to_string())),
        ("masks", masks),
    ];
    if !signal.ranges.is_empty() {
        coverage_fields.push((
            "profiles",
            Json::Arr(
                signal
                    .ranges
                    .iter()
                    .map(|(low, high)| {
                        build::obj(vec![("low", ranges_json(low)), ("high", ranges_json(high))])
                    })
                    .collect(),
            ),
        ));
    }
    let coverage_json = build::obj(coverage_fields);
    write_atomic(&dir.join("coverage.json"), &(coverage_json.to_string() + "\n"))?;
    let mut meta_fields = vec![
        ("version", build::int(2)),
        ("epochs_done", build::int(meta.epochs_done)),
        // As a string: JSON numbers go through f64, which cannot represent
        // u64 seeds above 2^53 exactly.
        ("campaign_seed", u64_json(meta.campaign_seed)),
        ("workers", build::int(meta.workers)),
    ];
    if !meta.worker_rng.is_empty() {
        meta_fields
            .push(("worker_rng", Json::Arr(meta.worker_rng.iter().map(rng_state_json).collect())));
    }
    let meta_json = build::obj(meta_fields);
    write_atomic(&dir.join("meta.json"), &(meta_json.to_string() + "\n"))
}

/// Writes only the lines past what's already on disk. Stats and diffs are
/// append-only across a campaign, so this keeps per-epoch checkpoint cost
/// proportional to the epoch's new results, not the accumulated history.
/// Only sound when the caller knows the on-disk prefix is its own earlier
/// write ([`save`] with `append = false` establishes that); on a count
/// mismatch (more lines on disk than in memory) the file is rewritten.
fn append_jsonl(path: &Path, items: &[Json]) -> io::Result<()> {
    let existing = match fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    if existing > items.len() {
        return write_atomic(path, &jsonl_slice(items));
    }
    if existing == items.len() {
        return Ok(());
    }
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    let tail = jsonl_slice(&items[existing..]);
    f.write_all(tail.as_bytes())?;
    f.sync_all()
}

fn jsonl_slice(items: &[Json]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&item.to_string());
        out.push('\n');
    }
    out
}

/// Loads a checkpoint directory written by [`save`].
///
/// # Errors
///
/// Missing files or malformed JSON.
pub fn load(dir: &Path) -> io::Result<CampaignState> {
    let meta = parse_doc(&fs::read_to_string(dir.join("meta.json"))?)?;
    let corpus = read_jsonl(&dir.join("corpus.jsonl"))?
        .iter()
        .map(entry_from_json)
        .collect::<io::Result<Vec<_>>>()?;
    let epochs = read_jsonl(&dir.join("stats.jsonl"))?
        .iter()
        .map(epoch_from_json)
        .collect::<io::Result<Vec<_>>>()?;
    let diffs = read_jsonl(&dir.join("diffs.jsonl"))?
        .iter()
        .map(diff_from_json)
        .collect::<io::Result<Vec<_>>>()?;
    let (coverage, signal) = match fs::read_to_string(dir.join("coverage.json")) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => (None, SignalCheckpoint::neuron()),
        Err(e) => return Err(e),
        Ok(text) => {
            let doc = parse_doc(&text)?;
            let masks = doc
                .get("masks")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("coverage.masks"))?
                .iter()
                .map(|m| {
                    m.as_str()
                        .map(|s| s.chars().map(|c| c == '1').collect::<Vec<bool>>())
                        .ok_or_else(|| bad("coverage mask"))
                })
                .collect::<io::Result<Vec<_>>>()?;
            // v1 checkpoints carry no metric field: they are neuron-metric.
            // Unknown or malformed specs are a clear error, not a panic —
            // a checkpoint from a newer build (or a corrupted one) should
            // say what it found.
            let metric = match doc.get("metric") {
                None | Some(Json::Null) => MetricKind::Neuron.into(),
                Some(m) => m
                    .as_str()
                    .ok_or_else(|| bad("coverage.metric"))?
                    .parse::<MetricSpec>()
                    .map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("coverage.metric: {e}"))
                    })?,
            };
            let ranges = match doc.get("profiles") {
                None | Some(Json::Null) => Vec::new(),
                Some(profiles) => profiles
                    .as_arr()
                    .ok_or_else(|| bad("coverage.profiles"))?
                    .iter()
                    .map(|p| {
                        Ok((
                            ranges_from_json(p.get("low").ok_or_else(|| bad("profile low"))?)?,
                            ranges_from_json(p.get("high").ok_or_else(|| bad("profile high"))?)?,
                        ))
                    })
                    .collect::<io::Result<Vec<_>>>()?,
            };
            (Some(masks), SignalCheckpoint { metric, ranges })
        }
    };
    let worker_rng = match meta.get("worker_rng") {
        None | Some(Json::Null) => Vec::new(),
        Some(states) => states
            .as_arr()
            .ok_or_else(|| bad("meta.worker_rng"))?
            .iter()
            .map(rng_state_from_json)
            .collect::<io::Result<Vec<_>>>()?,
    };
    // `workers` records the fleet width the checkpoint was written with.
    // When per-worker RNG streams are present the two must agree, or the
    // streams would be replayed against the wrong worker lanes.
    if let Some(w) = meta.get("workers").filter(|v| !matches!(v, Json::Null)) {
        let w = w.as_usize().ok_or_else(|| bad("meta.workers"))?;
        if !worker_rng.is_empty() && w != worker_rng.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("meta.workers is {w} but worker_rng has {} entries", worker_rng.len()),
            ));
        }
    }
    Ok(CampaignState {
        corpus,
        epochs,
        diffs,
        coverage,
        signal,
        epochs_done: field_usize(&meta, "epochs_done")?,
        campaign_seed: meta
            .get("campaign_seed")
            .and_then(u64_from_json)
            .ok_or_else(|| bad("meta.campaign_seed"))?,
        worker_rng,
    })
}

fn jsonl<'a>(lines: impl Iterator<Item = Json> + 'a) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Writes a file tmp-then-rename with an fsync, so concurrent readers (and
/// crashes) never observe a partial document. Shared with `dx-dist`'s
/// lease-state file.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

fn read_jsonl(path: &Path) -> io::Result<Vec<Json>> {
    fs::read_to_string(path)?.lines().filter(|l| !l.trim().is_empty()).map(parse_doc).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CampaignReport;
    use deepxplore::diff::Prediction;
    use dx_tensor::rng;
    use std::time::Duration;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dx_campaign_ckpt_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_masks() -> Vec<Vec<bool>> {
        vec![vec![true, false, true, true], vec![false, false, true, false]]
    }

    fn sample_state() -> (Corpus, CampaignReport, Vec<FoundDiff>, Meta) {
        let seeds = (0..3).map(|i| rng::uniform(&mut rng::rng(i), &[1, 6], 0.0, 1.0)).collect();
        let mut corpus = Corpus::new(seeds, 64);
        let run = deepxplore::SeedRun {
            test: None,
            preexisting: false,
            iterations: 4,
            newly_covered: 2,
            newly_by_component: vec![2],
            corpus_candidate: Some(rng::uniform(&mut rng::rng(9), &[1, 6], 0.0, 1.0)),
        };
        corpus.absorb(1, &run, &[]);
        let report = CampaignReport {
            epochs: vec![EpochStats {
                epoch: 0,
                seeds_run: 3,
                diffs_found: 1,
                iterations: 12,
                newly_covered: 5,
                mean_coverage: 0.375,
                component_coverage: vec![0.375],
                corpus_len: 4,
                elapsed: Duration::from_micros(123_456),
            }],
            workers: 2,
        };
        let diffs = vec![FoundDiff {
            seed_id: 1,
            epoch: 0,
            input: rng::uniform(&mut rng::rng(11), &[1, 6], 0.0, 1.0),
            predictions: vec![Prediction::Class(0), Prediction::Class(2)],
            iterations: 7,
            target_model: 1,
        }];
        let meta = Meta {
            epochs_done: 1,
            campaign_seed: 0xfeed,
            workers: 2,
            worker_rng: vec![[1, 2, 3, u64::MAX], [5, 6, 7, 8]],
        };
        (corpus, report, diffs, meta)
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp_dir("round_trip");
        let (corpus, report, diffs, meta) = sample_state();
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            false,
        )
        .unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.coverage, Some(sample_masks()));
        assert_eq!(state.epochs_done, 1);
        assert_eq!(state.campaign_seed, 0xfeed);
        assert_eq!(state.worker_rng, meta.worker_rng);
        assert_eq!(state.corpus.len(), corpus.len());
        for (a, b) in state.corpus.iter().zip(corpus.entries()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.input, b.input, "input of entry {} changed", a.id);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
            assert_eq!(a.exhausted, b.exhausted);
        }
        assert_eq!(state.epochs.len(), 1);
        assert_eq!(state.epochs[0].elapsed, Duration::from_micros(123_456));
        assert_eq!(state.diffs.len(), 1);
        assert_eq!(state.diffs[0].predictions, diffs[0].predictions);
        assert_eq!(state.diffs[0].input, diffs[0].input);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_rerunnable_and_appends_only_new_lines() {
        let dir = tmp_dir("rerun");
        let (corpus, mut report, mut diffs, meta) = sample_state();
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            false,
        )
        .unwrap();
        // Same state again: stats/diffs must not duplicate.
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            true,
        )
        .unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.epochs.len(), 1);
        assert_eq!(state.diffs.len(), 1);
        // One more epoch and diff: exactly one new line each.
        report.epochs.push(EpochStats { epoch: 1, ..report.epochs[0].clone() });
        diffs.push(diffs[0].clone());
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            true,
        )
        .unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.epochs.len(), 2);
        assert_eq!(state.diffs.len(), 2);
        assert_eq!(state.epochs[1].epoch, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_rewrites_when_disk_has_more_lines() {
        let dir = tmp_dir("foreign");
        let (corpus, report, diffs, meta) = sample_state();
        fs::create_dir_all(&dir).unwrap();
        // A foreign stats file with more lines than the campaign knows.
        fs::write(dir.join("stats.jsonl"), "{}\n{}\n{}\n{}\n{}\n").unwrap();
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            false,
        )
        .unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.epochs.len(), report.epochs.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn signal_checkpoint_round_trips_profiles() {
        let dir = tmp_dir("signal");
        let (corpus, report, diffs, meta) = sample_state();
        let signal = SignalCheckpoint {
            metric: MetricKind::Multisection { k: 4 }.into(),
            ranges: vec![
                // Includes the ±infinity an unprofiled neuron carries.
                (vec![0.25, f32::INFINITY], vec![0.75, f32::NEG_INFINITY]),
                (vec![-1.5, 0.0], vec![1.5, 2.0]),
            ],
        };
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &signal, &meta, false).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.signal.metric, MetricKind::Multisection { k: 4 }.into());
        assert_eq!(state.signal.ranges.len(), 2);
        for ((lo, hi), (slo, shi)) in signal.ranges.iter().zip(&state.signal.ranges) {
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(lo), bits(slo));
            assert_eq!(bits(hi), bits(shi));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn composite_metric_round_trips_and_malformed_metric_is_a_clear_error() {
        let dir = tmp_dir("composite_metric");
        let (corpus, report, diffs, meta) = sample_state();
        let signal = SignalCheckpoint {
            metric: "multisection:4+boundary".parse().unwrap(),
            ranges: vec![(vec![0.0, 1.0], vec![1.0, 2.0]), (vec![0.5, 0.0], vec![1.5, 1.0])],
        };
        save(&dir, &corpus, &report, &diffs, &sample_masks(), &signal, &meta, false).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.signal.metric, signal.metric);
        assert_eq!(state.signal.metric.to_string(), "multisection:4+boundary");
        // An unknown/malformed metric string is an InvalidData error that
        // names the problem, not a panic.
        for bad_metric in ["warp", "multisection:4+", "boundary+boundary"] {
            let doc = format!("{{\"version\":3,\"metric\":\"{bad_metric}\",\"masks\":[]}}\n");
            fs::write(dir.join("coverage.json"), doc).unwrap();
            let err = match load(&dir) {
                Err(e) => e,
                Ok(_) => panic!("metric `{bad_metric}` was accepted"),
            };
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad_metric}");
            assert!(err.to_string().contains("coverage.metric"), "{err}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_coverage_files_load_as_neuron_metric() {
        // Checkpoints written before metrics were persisted carry no
        // `metric` field; they must load as the paper's neuron metric.
        let dir = tmp_dir("v1_metric");
        let (corpus, report, diffs, meta) = sample_state();
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            false,
        )
        .unwrap();
        fs::write(dir.join("coverage.json"), "{\"version\":1,\"masks\":[\"10\",\"01\"]}\n")
            .unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.signal, SignalCheckpoint::neuron());
        assert_eq!(state.coverage, Some(vec![vec![true, false], vec![false, true]]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_tolerates_missing_coverage_file() {
        let dir = tmp_dir("no_coverage");
        let (corpus, report, diffs, meta) = sample_state();
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            false,
        )
        .unwrap();
        fs::remove_file(dir.join("coverage.json")).unwrap();
        let state = load(&dir).unwrap();
        assert_eq!(state.coverage, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_tolerates_missing_worker_rng() {
        // A v1 checkpoint (no worker_rng field) still loads; the resume
        // path then re-derives streams from the master seed.
        let dir = tmp_dir("no_rng");
        let (corpus, report, diffs, mut meta) = sample_state();
        meta.worker_rng = Vec::new();
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            false,
        )
        .unwrap();
        let state = load(&dir).unwrap();
        assert!(state.worker_rng.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_corrupt_checkpoint() {
        let dir = tmp_dir("corrupt");
        let (corpus, report, diffs, meta) = sample_state();
        save(
            &dir,
            &corpus,
            &report,
            &diffs,
            &sample_masks(),
            &SignalCheckpoint::neuron(),
            &meta,
            false,
        )
        .unwrap();
        fs::write(dir.join("corpus.jsonl"), "{not json}\n").unwrap();
        assert!(load(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_dir_errors() {
        assert!(load(Path::new("/nonexistent/dx-campaign")).is_err());
    }
}
