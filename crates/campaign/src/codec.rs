//! Shared JSON codecs for campaign values — tensors, corpus entries, seed
//! runs, found diffs and epoch statistics.
//!
//! Extracted from the checkpoint writer so the distributed campaign
//! (`dx-dist`) can put the exact same encodings on the wire: a checkpoint
//! line and a wire payload for the same value are byte-identical, and both
//! round-trip floats bit-for-bit (see [`crate::json`]).

use std::io;

use deepxplore::diff::Prediction;
use deepxplore::generator::GeneratedTest;
use deepxplore::SeedRun;
use dx_tensor::Tensor;

use crate::corpus::CorpusEntry;
use crate::engine::FoundDiff;
use crate::json::{build, parse, Json};
use crate::report::EpochStats;

/// An `InvalidData` error naming the missing or malformed field.
pub fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("missing/invalid {what}"))
}

/// Parses one JSON document, mapping parse errors to `InvalidData`.
pub fn parse_doc(text: &str) -> io::Result<Json> {
    parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Required `usize` field of an object.
pub fn field_usize(v: &Json, key: &str) -> io::Result<usize> {
    v.get(key).and_then(Json::as_usize).ok_or_else(|| bad(key))
}

/// Required `f32` field of an object.
pub fn field_f32(v: &Json, key: &str) -> io::Result<f32> {
    v.get(key).and_then(Json::as_f32).ok_or_else(|| bad(key))
}

/// A `u64` as a JSON string — JSON numbers go through `f64`, which cannot
/// represent values above 2^53 exactly (seeds and RNG words can).
pub fn u64_json(v: u64) -> Json {
    build::str(&v.to_string())
}

/// Reads a `u64` written by [`u64_json`], also accepting a plain number
/// (for hand-written or older documents).
pub fn u64_from_json(v: &Json) -> Option<u64> {
    v.as_str().and_then(|s| s.parse().ok()).or_else(|| v.as_u64())
}

/// An RNG state (four xoshiro words) as an array of decimal strings.
pub fn rng_state_json(state: &[u64; 4]) -> Json {
    Json::Arr(state.iter().map(|&w| u64_json(w)).collect())
}

/// Reads an RNG state written by [`rng_state_json`].
pub fn rng_state_from_json(v: &Json) -> io::Result<[u64; 4]> {
    let words = v.as_arr().ok_or_else(|| bad("rng state"))?;
    if words.len() != 4 {
        return Err(bad("rng state length"));
    }
    let mut out = [0u64; 4];
    for (slot, w) in out.iter_mut().zip(words) {
        *slot = u64_from_json(w).ok_or_else(|| bad("rng state word"))?;
    }
    Ok(out)
}

/// A flat `f32` array that may contain non-finite values — neuron-profile
/// ranges hold ±infinity for unprofiled neurons, which plain JSON numbers
/// cannot carry (the emitter writes them as `null`). Non-finite entries
/// travel as the strings `"inf"`, `"-inf"` and `"nan"`.
pub fn ranges_json(values: &[f32]) -> Json {
    Json::Arr(
        values
            .iter()
            .map(|&v| {
                if v.is_finite() {
                    Json::Num(f64::from(v))
                } else if v == f32::INFINITY {
                    build::str("inf")
                } else if v == f32::NEG_INFINITY {
                    build::str("-inf")
                } else {
                    build::str("nan")
                }
            })
            .collect(),
    )
}

/// Reads an array written by [`ranges_json`].
pub fn ranges_from_json(v: &Json) -> io::Result<Vec<f32>> {
    v.as_arr()
        .ok_or_else(|| bad("range array"))?
        .iter()
        .map(|x| match x {
            Json::Str(s) => match s.as_str() {
                "inf" => Ok(f32::INFINITY),
                "-inf" => Ok(f32::NEG_INFINITY),
                "nan" => Ok(f32::NAN),
                _ => Err(bad("range element")),
            },
            other => other.as_f32().ok_or_else(|| bad("range element")),
        })
        .collect()
}

/// A tensor's `shape`/`data` fields, to inline into a containing object.
pub fn tensor_fields(t: &Tensor) -> (Json, Json) {
    (build::ints(t.shape()), build::f32s(t.data()))
}

/// A tensor as a standalone `{shape, data}` object.
pub fn tensor_json(t: &Tensor) -> Json {
    let (shape, data) = tensor_fields(t);
    build::obj(vec![("shape", shape), ("data", data)])
}

/// Reads a tensor from an object carrying `shape` and `data` fields
/// (standalone or inlined into a larger record).
pub fn tensor_from_json(v: &Json) -> io::Result<Tensor> {
    let shape: Vec<usize> = v
        .get("shape")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("shape"))?
        .iter()
        .map(|s| s.as_usize().ok_or_else(|| bad("shape element")))
        .collect::<io::Result<_>>()?;
    let data: Vec<f32> = v
        .get("data")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("data"))?
        .iter()
        .map(|d| d.as_f32().ok_or_else(|| bad("data element")))
        .collect::<io::Result<_>>()?;
    if data.len() != shape.iter().product::<usize>() {
        return Err(bad("tensor data length"));
    }
    Ok(Tensor::from_vec(data, &shape))
}

/// One model prediction.
pub fn prediction_json(p: &Prediction) -> Json {
    match p {
        Prediction::Class(c) => build::obj(vec![("class", build::int(*c))]),
        Prediction::Value(x) => build::obj(vec![("value", build::num(*x))]),
    }
}

/// Reads a prediction written by [`prediction_json`].
pub fn prediction_from_json(p: &Json) -> io::Result<Prediction> {
    if let Some(c) = p.get("class").and_then(Json::as_usize) {
        Ok(Prediction::Class(c))
    } else if let Some(x) = p.get("value").and_then(Json::as_f32) {
        Ok(Prediction::Value(x))
    } else {
        Err(bad("prediction"))
    }
}

fn predictions_json(ps: &[Prediction]) -> Json {
    Json::Arr(ps.iter().map(prediction_json).collect())
}

fn predictions_from_json(v: &Json, key: &str) -> io::Result<Vec<Prediction>> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| bad(key))?
        .iter()
        .map(prediction_from_json)
        .collect()
}

/// One corpus entry, input inline.
pub fn entry_json(e: &CorpusEntry) -> Json {
    let (shape, data) = tensor_fields(&e.input);
    build::obj(vec![
        ("id", build::int(e.id)),
        ("parent", build::opt_int(e.parent)),
        ("depth", build::int(e.depth)),
        ("energy", build::num(e.energy)),
        ("times_fuzzed", build::int(e.times_fuzzed)),
        ("diffs_found", build::int(e.diffs_found)),
        ("new_coverage", build::int(e.new_coverage)),
        ("exhausted", Json::Bool(e.exhausted)),
        ("shape", shape),
        ("data", data),
    ])
}

/// Reads a corpus entry written by [`entry_json`].
pub fn entry_from_json(v: &Json) -> io::Result<CorpusEntry> {
    Ok(CorpusEntry {
        id: field_usize(v, "id")?,
        parent: match v.get("parent") {
            Some(Json::Null) | None => None,
            Some(p) => Some(p.as_usize().ok_or_else(|| bad("parent"))?),
        },
        depth: field_usize(v, "depth")?,
        input: tensor_from_json(v)?,
        energy: field_f32(v, "energy")?,
        times_fuzzed: field_usize(v, "times_fuzzed")?,
        diffs_found: field_usize(v, "diffs_found")?,
        new_coverage: field_usize(v, "new_coverage")?,
        exhausted: v.get("exhausted").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// One epoch's statistics.
pub fn epoch_json(e: &EpochStats) -> Json {
    build::obj(vec![
        ("epoch", build::int(e.epoch)),
        ("seeds_run", build::int(e.seeds_run)),
        ("diffs_found", build::int(e.diffs_found)),
        ("iterations", build::int(e.iterations)),
        ("newly_covered", build::int(e.newly_covered)),
        ("mean_coverage", build::num(e.mean_coverage)),
        ("component_coverage", build::f32s(&e.component_coverage)),
        ("corpus_len", build::int(e.corpus_len)),
        ("elapsed_us", Json::Num(e.elapsed.as_micros() as f64)),
        ("seeds_per_sec", Json::Num(e.seeds_per_sec())),
        ("diffs_per_sec", Json::Num(e.diffs_per_sec())),
    ])
}

/// Reads epoch statistics written by [`epoch_json`]. Records from before
/// composite metrics carry no `component_coverage`; they load with an
/// empty vector (rendered without the per-component column).
pub fn epoch_from_json(v: &Json) -> io::Result<EpochStats> {
    Ok(EpochStats {
        epoch: field_usize(v, "epoch")?,
        seeds_run: field_usize(v, "seeds_run")?,
        diffs_found: field_usize(v, "diffs_found")?,
        iterations: field_usize(v, "iterations")?,
        newly_covered: field_usize(v, "newly_covered")?,
        mean_coverage: field_f32(v, "mean_coverage")?,
        component_coverage: match v.get("component_coverage") {
            None | Some(Json::Null) => Vec::new(),
            Some(c) => c
                .as_arr()
                .ok_or_else(|| bad("component_coverage"))?
                .iter()
                .map(|x| x.as_f32().ok_or_else(|| bad("component_coverage entry")))
                .collect::<io::Result<_>>()?,
        },
        corpus_len: field_usize(v, "corpus_len")?,
        elapsed: std::time::Duration::from_micros(
            v.get("elapsed_us").and_then(Json::as_u64).ok_or_else(|| bad("elapsed_us"))?,
        ),
    })
}

/// One found difference, input inline.
pub fn diff_json(d: &FoundDiff) -> Json {
    let (shape, data) = tensor_fields(&d.input);
    build::obj(vec![
        ("seed_id", build::int(d.seed_id)),
        ("epoch", build::int(d.epoch)),
        ("iterations", build::int(d.iterations)),
        ("target_model", build::int(d.target_model)),
        ("predictions", predictions_json(&d.predictions)),
        ("shape", shape),
        ("data", data),
    ])
}

/// Reads a found difference written by [`diff_json`].
pub fn diff_from_json(v: &Json) -> io::Result<FoundDiff> {
    Ok(FoundDiff {
        seed_id: field_usize(v, "seed_id")?,
        epoch: field_usize(v, "epoch")?,
        input: tensor_from_json(v)?,
        predictions: predictions_from_json(v, "predictions")?,
        iterations: field_usize(v, "iterations")?,
        target_model: field_usize(v, "target_model")?,
    })
}

/// One generated difference-inducing test, input inline.
pub fn generated_test_json(t: &GeneratedTest) -> Json {
    let (shape, data) = tensor_fields(&t.input);
    build::obj(vec![
        ("seed_index", build::int(t.seed_index)),
        ("iterations", build::int(t.iterations)),
        ("target_model", build::int(t.target_model)),
        ("predictions", predictions_json(&t.predictions)),
        ("shape", shape),
        ("data", data),
    ])
}

/// Reads a generated test written by [`generated_test_json`].
pub fn generated_test_from_json(v: &Json) -> io::Result<GeneratedTest> {
    Ok(GeneratedTest {
        seed_index: field_usize(v, "seed_index")?,
        input: tensor_from_json(v)?,
        iterations: field_usize(v, "iterations")?,
        predictions: predictions_from_json(v, "predictions")?,
        target_model: field_usize(v, "target_model")?,
    })
}

/// One per-seed campaign step result — what a distributed worker reports
/// back for each leased seed.
pub fn seed_run_json(r: &SeedRun) -> Json {
    build::obj(vec![
        ("test", r.test.as_ref().map_or(Json::Null, generated_test_json)),
        ("preexisting", Json::Bool(r.preexisting)),
        ("iterations", build::int(r.iterations)),
        ("newly_covered", build::int(r.newly_covered)),
        ("newly_by_component", build::ints(&r.newly_by_component)),
        ("candidate", r.corpus_candidate.as_ref().map_or(Json::Null, tensor_json)),
    ])
}

/// Reads a seed run written by [`seed_run_json`]. A missing
/// `newly_by_component` (pre-composite peers) loads as empty; energy
/// accounting then falls back to the pooled `newly_covered` count.
pub fn seed_run_from_json(v: &Json) -> io::Result<SeedRun> {
    Ok(SeedRun {
        test: match v.get("test") {
            Some(Json::Null) | None => None,
            Some(t) => Some(generated_test_from_json(t)?),
        },
        preexisting: v
            .get("preexisting")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("preexisting"))?,
        iterations: field_usize(v, "iterations")?,
        newly_covered: field_usize(v, "newly_covered")?,
        newly_by_component: match v.get("newly_by_component") {
            None | Some(Json::Null) => Vec::new(),
            Some(c) => c
                .as_arr()
                .ok_or_else(|| bad("newly_by_component"))?
                .iter()
                .map(|x| x.as_usize().ok_or_else(|| bad("newly_by_component entry")))
                .collect::<io::Result<_>>()?,
        },
        corpus_candidate: match v.get("candidate") {
            Some(Json::Null) | None => None,
            Some(t) => Some(tensor_from_json(t)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    fn sample_test() -> GeneratedTest {
        GeneratedTest {
            seed_index: 3,
            input: rng::uniform(&mut rng::rng(1), &[1, 5], 0.0, 1.0),
            iterations: 9,
            predictions: vec![Prediction::Class(1), Prediction::Class(4)],
            target_model: 1,
        }
    }

    #[test]
    fn seed_run_round_trips() {
        let run = SeedRun {
            test: Some(sample_test()),
            preexisting: false,
            iterations: 9,
            newly_covered: 5,
            newly_by_component: vec![3, 2],
            corpus_candidate: Some(rng::uniform(&mut rng::rng(2), &[1, 5], 0.0, 1.0)),
        };
        let back =
            seed_run_from_json(&parse_doc(&seed_run_json(&run).to_string()).unwrap()).unwrap();
        assert_eq!(back.iterations, 9);
        assert_eq!(back.newly_covered, 5);
        assert_eq!(back.newly_by_component, vec![3, 2]);
        assert!(!back.preexisting);
        let (t, bt) = (run.test.unwrap(), back.test.unwrap());
        assert_eq!(t.input, bt.input);
        assert_eq!(t.predictions, bt.predictions);
        assert_eq!(run.corpus_candidate, back.corpus_candidate);
    }

    #[test]
    fn empty_seed_run_round_trips() {
        let run = SeedRun {
            test: None,
            preexisting: true,
            iterations: 0,
            newly_covered: 0,
            newly_by_component: Vec::new(),
            corpus_candidate: None,
        };
        let back =
            seed_run_from_json(&parse_doc(&seed_run_json(&run).to_string()).unwrap()).unwrap();
        assert!(back.test.is_none());
        assert!(back.preexisting);
        assert!(back.corpus_candidate.is_none());
        assert!(back.newly_by_component.is_empty());
    }

    #[test]
    fn seed_run_without_component_field_loads_with_empty_split() {
        // Pre-composite documents have no `newly_by_component`.
        let doc = parse_doc(
            r#"{"test":null,"preexisting":false,"iterations":2,"newly_covered":4,"candidate":null}"#,
        )
        .unwrap();
        let run = seed_run_from_json(&doc).unwrap();
        assert_eq!(run.newly_covered, 4);
        assert!(run.newly_by_component.is_empty());
    }

    #[test]
    fn u64_codec_is_exact_above_2_53() {
        for v in [0u64, 1 << 53, u64::MAX, 0xfeed_beef_dead_cafe] {
            assert_eq!(u64_from_json(&u64_json(v)), Some(v));
        }
        // Plain numbers are accepted too.
        assert_eq!(u64_from_json(&Json::Num(42.0)), Some(42));
    }

    #[test]
    fn rng_state_round_trips() {
        let state = [u64::MAX, 0, 1 << 60, 0x1234_5678_9abc_def0];
        let back = rng_state_from_json(&rng_state_json(&state)).unwrap();
        assert_eq!(back, state);
        assert!(rng_state_from_json(&Json::Arr(vec![u64_json(1)])).is_err());
    }

    #[test]
    fn ranges_round_trip_including_non_finite() {
        let values = [0.25f32, -1.5, f32::INFINITY, f32::NEG_INFINITY, 0.0, 3.25e-6];
        let back =
            ranges_from_json(&parse_doc(&ranges_json(&values).to_string()).unwrap()).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // NaN survives as NaN (bit pattern normalized to the canonical one).
        let back = ranges_from_json(&ranges_json(&[f32::NAN])).unwrap();
        assert!(back[0].is_nan());
        assert!(ranges_from_json(&parse_doc("[\"huge\"]").unwrap()).is_err());
    }

    #[test]
    fn tensor_object_round_trips() {
        let t = rng::uniform(&mut rng::rng(3), &[2, 3], -1.0, 1.0);
        let back = tensor_from_json(&parse_doc(&tensor_json(&t).to_string()).unwrap()).unwrap();
        assert_eq!(t, back);
    }
}
