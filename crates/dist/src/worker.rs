//! The campaign worker: a thin network wrapper around the generator's
//! per-seed step loop.
//!
//! A worker owns clones of the models and, per campaign it is leased
//! work for, a [`deepxplore::Generator`] whose RNG stream derives from
//! `(campaign_seed, slot)` exactly like an in-process pool worker's — a
//! dist fleet of N workers and an in-process pool of N workers draw from
//! the same per-worker streams, and a multi-tenant fleet runs each
//! tenant's stream exactly as a dedicated fleet would. Campaign state is
//! built lazily from the leases the dispatcher hands out (protocol v6
//! tags each lease with a campaign id and master seed); a worker behind
//! a single-campaign coordinator only ever sees campaign `0`. The
//! worker leases seed batches, runs them in tiles through
//! [`deepxplore::Generator::run_batch`] (one stacked forward and one
//! batched backward per model per iterate — see `WorkerConfig::batch`),
//! heartbeats during long leases, and reports outcomes plus a
//! sparse coverage delta; the coordinator's acks carry the global
//! union's news back, which the generator adopts so it stops chasing
//! neurons another worker already covered.

use std::collections::BTreeMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use deepxplore::generator::Generator;
use dx_campaign::ModelSuite;
use dx_coverage::CoverageSignal;
use dx_telemetry::phase::{LocalHist, Phase};
use dx_tensor::rng;

use crate::proto::{
    coverage_news, CovDelta, Fingerprint, Job, JobResult, Msg, TelemetrySnapshot, PROTOCOL_VERSION,
};
use crate::suite_fingerprint;
use crate::wire::{read_frame, write_frame};

/// Worker-side knobs.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Jobs requested per lease. Advisory since protocol v4: a
    /// coordinator running adaptive lease sizing may grant more.
    pub lease_size: usize,
    /// Seeds grown per batched generator call
    /// ([`Generator::run_batch`]): lease jobs run `batch` at a
    /// time through one stacked forward/backward per model per iterate.
    /// Heartbeats fire between tiles, so the coordinator's lease
    /// deadline must cover `max(batch, heartbeat_every)` seed steps.
    pub batch: usize,
    /// Heartbeat before every this-many-th job within a lease; with the
    /// default of 1, every job starts on a fresh lease deadline, so the
    /// coordinator's `lease_timeout` only needs to cover one seed step.
    pub heartbeat_every: usize,
    /// Connection attempts before giving up (the coordinator may still be
    /// binding when a fleet starts).
    pub connect_retries: u32,
    /// Pause between connection attempts.
    pub retry_delay: Duration,
    /// Shared secret answering the coordinator's auth challenge
    /// ([`crate::auth`]). Required when the coordinator runs with one;
    /// ignored (never sent) when it does not.
    pub auth_token: Option<String>,
    /// Persistent worker identity announced at `hello` and bound into
    /// the auth proof. `None` derives a fresh unique one per
    /// [`run_worker`] call (worker threads sharing a process stay
    /// distinct); operators who want identities that survive
    /// reconnects and restarts — which is what makes eviction stick to
    /// the worker rather than the connection — set one explicitly
    /// (`--worker-id` / `DX_WORKER_ID`).
    pub worker_id: Option<String>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            lease_size: 4,
            batch: 4,
            heartbeat_every: 1,
            connect_retries: 50,
            retry_delay: Duration::from_millis(100),
            auth_token: None,
            worker_id: None,
        }
    }
}

/// What a worker did over its connection lifetime.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// The slot the coordinator assigned.
    pub slot: u64,
    /// Seed steps completed.
    pub steps: usize,
    /// Difference-inducing inputs found.
    pub diffs_found: usize,
    /// The worker's final local per-model coverage: across campaigns,
    /// the best (max) coverage this worker's union views reached.
    pub coverage: Vec<f32>,
}

/// Per-campaign worker state: the generator (own RNG stream, own local
/// coverage trackers) and the coordinator's model of what this worker
/// knows, which both directions' deltas are relative to.
struct CampaignCtx {
    generator: Generator,
    known: Vec<CoverageSignal>,
}

fn proto_err(what: impl AsRef<str>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.as_ref().to_string())
}

/// Stacks one tile of lease jobs' `[1, ...]` inputs into a `[C, ...]`
/// batch for the generator's batched path. Empty tiles (which
/// `chunks()` never yields) stack to an empty `[0]` tensor.
fn stack_jobs(tile: &[Job]) -> dx_tensor::Tensor {
    let Some(first) = tile.first() else {
        return dx_tensor::Tensor::zeros(&[0]);
    };
    let mut data = Vec::with_capacity(tile.len() * first.input.len());
    for job in tile {
        data.extend_from_slice(job.input.data());
    }
    let mut shape = first.input.shape().to_vec();
    if let Some(lead) = shape.first_mut() {
        *lead = tile.len();
    }
    dx_tensor::Tensor::from_vec(data, &shape)
}

/// A fresh default identity: hashed from the pid, the clock, and a
/// process-wide counter, so every worker that does not announce an
/// explicit id is distinct — including worker threads sharing one
/// process (an in-process fleet).
pub(crate) fn fresh_worker_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let pid = u64::from(std::process::id());
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    let mut seed = pid.to_le_bytes().to_vec();
    seed.extend_from_slice(&count.to_le_bytes());
    seed.extend_from_slice(&nanos.to_le_bytes());
    let digest = crate::auth::sha256(&seed);
    let hex: String = digest.iter().take(8).map(|b| format!("{b:02x}")).collect();
    format!("w-{hex}")
}

fn connect(addr: impl ToSocketAddrs + Clone, cfg: &WorkerConfig) -> io::Result<TcpStream> {
    let mut last = None;
    for _ in 0..cfg.connect_retries.max(1) {
        match TcpStream::connect(addr.clone()) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(cfg.retry_delay);
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no attempts made")))
}

fn exchange(stream: &mut TcpStream, msg: &Msg) -> io::Result<Msg> {
    write_frame(stream, &msg.to_json())?;
    Msg::from_json(&read_frame(stream)?)
}

/// Runs a worker against the coordinator at `addr` until the campaign
/// drains. `label` must match the coordinator's (it is part of the
/// admission fingerprint).
///
/// # Errors
///
/// Connection failures, admission rejection, or protocol violations.
pub fn run_worker(
    addr: impl ToSocketAddrs + Clone,
    suite: ModelSuite,
    label: &str,
    cfg: WorkerConfig,
) -> io::Result<WorkerSummary> {
    let fingerprint = suite_fingerprint(&suite, label);
    let worker_id = cfg.worker_id.clone().unwrap_or_else(fresh_worker_id);
    let mut stream = connect(addr, &cfg)?;
    stream.set_nodelay(true)?;
    let slot = hello(&mut stream, fingerprint, &worker_id, cfg.auth_token.as_deref())?;
    // BTreeMap so the telemetry fold over contexts is deterministic.
    let mut contexts: BTreeMap<u64, CampaignCtx> = BTreeMap::new();
    let mut summary = WorkerSummary { slot, steps: 0, diffs_found: 0, coverage: Vec::new() };
    // Heartbeat round-trips since the last results report, shipped as
    // part of the advisory telemetry snapshot.
    let mut heartbeat_rtt = LocalHist::new();
    loop {
        let reply =
            exchange(&mut stream, &Msg::LeaseRequest { slot, want: cfg.lease_size.max(1) })?;
        match reply {
            Msg::Lease { lease, campaign, campaign_seed, rng_state, jobs, cov } => {
                let ctx = contexts.entry(campaign).or_insert_with(|| {
                    context_for(&suite, slot, campaign_seed, rng_state.as_ref())
                });
                adopt(&mut ctx.generator, &mut ctx.known, &cov)?;
                let mut items = Vec::with_capacity(jobs.len());
                let mut since_beat = 0usize;
                for tile in jobs.chunks(cfg.batch.max(1)) {
                    // Heartbeat *between* tiles (before every one, at the
                    // default heartbeat_every = 1 with batch = 1),
                    // resetting the lease deadline so the timeout only
                    // needs to cover max(batch, heartbeat_every) seed
                    // steps, not a whole lease. (A stretch of steps that
                    // still outlasts the timeout expires the lease; the
                    // coordinator salvages those results on arrival as
                    // long as the seeds were not re-leased meanwhile.)
                    if since_beat > 0
                        && cfg.heartbeat_every > 0
                        && since_beat >= cfg.heartbeat_every
                    {
                        since_beat = 0;
                        let sent = Instant::now();
                        let reply = exchange(&mut stream, &Msg::Heartbeat { slot, lease })?;
                        heartbeat_rtt.record(sent.elapsed().as_secs_f64());
                        match reply {
                            Msg::Ack { cov } => adopt(&mut ctx.generator, &mut ctx.known, &cov)?,
                            Msg::Drain => {} // Finish the lease; exit after reporting.
                            other => return Err(proto_err(format!("unexpected {other:?}"))),
                        }
                    }
                    let ids: Vec<usize> = tile.iter().map(|j| j.seed_id).collect();
                    let stacked = stack_jobs(tile);
                    let runs = ctx.generator.run_batch(&ids, &stacked);
                    since_beat += tile.len();
                    for (seed_id, run) in ids.into_iter().zip(runs) {
                        summary.steps += 1;
                        if run.found_difference() {
                            summary.diffs_found += 1;
                        }
                        items.push(JobResult { seed_id, run });
                    }
                }
                let cov = local_news(&ctx.generator, &mut ctx.known);
                let telemetry = take_telemetry(&mut ctx.generator, &mut heartbeat_rtt);
                let results = Msg::Results {
                    slot,
                    lease,
                    campaign,
                    items,
                    cov,
                    rng_state: ctx.generator.rng_state(),
                    telemetry,
                };
                match exchange(&mut stream, &results)? {
                    Msg::Ack { cov } => adopt(&mut ctx.generator, &mut ctx.known, &cov)?,
                    Msg::Drain => break,
                    other => return Err(proto_err(format!("unexpected {other:?}"))),
                }
            }
            Msg::Wait { millis } => std::thread::sleep(Duration::from_millis(millis.min(1000))),
            Msg::Drain => break,
            Msg::Reject { reason } => return Err(proto_err(format!("rejected: {reason}"))),
            other => return Err(proto_err(format!("unexpected {other:?}"))),
        }
    }
    let _ = write_frame(&mut stream, &Msg::Bye.to_json());
    // A worker that drained before its first lease covered nothing.
    summary.coverage = vec![0.0; suite.models.len()];
    for ctx in contexts.values() {
        for (best, c) in summary.coverage.iter_mut().zip(ctx.generator.coverage()) {
            *best = best.max(c);
        }
    }
    Ok(summary)
}

/// Fresh per-campaign state: the generator stream derives from the
/// campaign seed and the worker's slot, continued from the dispatcher's
/// checkpointed RNG state when the lease carried one (fleet resume).
fn context_for(
    suite: &ModelSuite,
    slot: u64,
    campaign_seed: u64,
    rng_state: Option<&[u64; 4]>,
) -> CampaignCtx {
    let signals = suite.signal.build(&suite.models);
    let mut generator = Generator::with_signals(
        suite.models.clone(),
        suite.kind,
        suite.hp,
        suite.constraint.clone(),
        signals,
        rng::derive_seed(campaign_seed, 1 + slot),
    );
    if let Some(state) = rng_state {
        generator.set_rng_state(*state);
    }
    let known = generator.signals().to_vec();
    CampaignCtx { generator, known }
}

/// Drains the generator's phase accumulator and the heartbeat RTT delta
/// into a wire snapshot for the next `results` frame. The coordinator
/// owns folding these into a registry — the worker only ships deltas, so
/// an in-process fleet (coordinator and workers sharing one registry)
/// never counts a phase twice. Returns `None` when there is nothing to
/// report.
fn take_telemetry(
    generator: &mut Generator,
    heartbeat_rtt: &mut LocalHist,
) -> Option<TelemetrySnapshot> {
    let phases = generator.take_phase_stats();
    let snapshot = TelemetrySnapshot {
        phases: Phase::ALL
            .into_iter()
            .filter(|p| !phases.get(*p).is_empty())
            .map(|p| (p.name().to_string(), phases.get(p).clone()))
            .collect(),
        heartbeat: (!heartbeat_rtt.is_empty()).then(|| std::mem::take(heartbeat_rtt)),
    };
    (!snapshot.is_empty()).then_some(snapshot)
}

fn hello(
    stream: &mut TcpStream,
    fingerprint: Fingerprint,
    worker_id: &str,
    auth_token: Option<&str>,
) -> io::Result<u64> {
    let mut reply = exchange(
        stream,
        &Msg::Hello { version: PROTOCOL_VERSION, fingerprint, worker_id: worker_id.to_string() },
    )?;
    if let Msg::Challenge { nonce } = &reply {
        // The coordinator demands authentication before admitting anyone.
        let Some(token) = auth_token else {
            return Err(proto_err(
                "coordinator requires authentication; configure the shared \
                 token (--auth-token / DX_AUTH_TOKEN)",
            ));
        };
        reply = exchange(
            stream,
            &Msg::AuthProof { proof: crate::auth::proof(token, nonce, worker_id) },
        )?;
    }
    match reply {
        Msg::Welcome { slot, .. } => Ok(slot),
        Msg::Reject { reason } => Err(proto_err(format!("rejected: {reason}"))),
        other => Err(proto_err(format!("unexpected {other:?}"))),
    }
}

/// Applies the coordinator's coverage news to the worker's known-view and
/// the generator's own trackers.
fn adopt(
    generator: &mut Generator,
    known: &mut [CoverageSignal],
    cov: &CovDelta,
) -> io::Result<()> {
    if cov.len() != known.len() {
        return Err(proto_err("coverage delta model-count mismatch"));
    }
    for (k, idx) in known.iter_mut().zip(cov) {
        if idx.iter().any(|&i| i >= k.total()) {
            return Err(proto_err("coverage delta out of range"));
        }
        k.apply_covered_indices(idx);
    }
    generator.adopt_coverage(known);
    Ok(())
}

/// Coverage this worker found that the coordinator hasn't heard about,
/// after which the known-view catches up.
fn local_news(generator: &Generator, known: &mut [CoverageSignal]) -> CovDelta {
    coverage_news(generator.signals(), known)
}

/// A raw scripted exchange for protocol tests: sends `msgs` in order and
/// returns each reply (not used by real workers).
#[cfg(test)]
pub(crate) fn scripted(addr: std::net::SocketAddr, msgs: &[Msg]) -> io::Result<Vec<Msg>> {
    scripted_with_token(addr, None, msgs)
}

/// [`scripted`], answering an auth challenge after the first `hello` with
/// a proof derived from `token` (when given). The challenge reply is not
/// recorded — callers see the post-auth verdict, as a real worker would.
/// The proof is bound to the identity in the preceding `hello` frame
/// (or a fresh default when the script starts elsewhere).
#[cfg(test)]
pub(crate) fn scripted_with_token(
    addr: std::net::SocketAddr,
    token: Option<&str>,
    msgs: &[Msg],
) -> io::Result<Vec<Msg>> {
    let mut stream = TcpStream::connect(addr)?;
    let mut out = Vec::new();
    let mut identity = fresh_worker_id();
    for m in msgs {
        if let Msg::Hello { worker_id, .. } = m {
            identity = worker_id.clone();
        }
        let mut reply = exchange(&mut stream, m)?;
        if let (Msg::Challenge { nonce }, Some(token)) = (&reply, token) {
            reply = exchange(
                &mut stream,
                &Msg::AuthProof { proof: crate::auth::proof(token, nonce, &identity) },
            )?;
        }
        out.push(reply);
    }
    Ok(out)
}
