//! `dx-dist` — a distributed coordinator/worker campaign service.
//!
//! DeepXplore's joint-optimization loop is embarrassingly parallel across
//! seeds; `dx-campaign`'s in-process pool is capped by one machine's
//! cores. This crate runs **one logical campaign across many OS
//! processes**:
//!
//! - The **coordinator** ([`Coordinator`]) owns the corpus and the global
//!   coverage union, hands out energy-weighted seed leases, and folds back
//!   worker results — step outcomes, difference-inducing inputs,
//!   productive mutants, and sparse coverage bitmap deltas
//!   ([`dx_coverage::CoverageSignal::diff_indices`]).
//! - **Workers** ([`worker::run_worker`]) are thin wrappers around the
//!   generator's batched step loop ([`deepxplore::Generator::run_batch`]);
//!   their RNG streams derive from `(campaign seed, slot)` exactly like
//!   in-process pool workers'.
//! - Transport is a hand-rolled length-prefixed JSON framing
//!   ([`wire`]) over `std::net::TcpStream` — the payload codecs are the
//!   campaign checkpoint codecs, reused byte-for-byte.
//! - Liveness comes from worker heartbeats and lease timeouts that
//!   requeue abandoned seeds; a graceful drain writes a checkpoint
//!   (campaign JSONL plus `dist.json` lease state) from which
//!   [`Coordinator::resume`] restarts the whole fleet — or
//!   [`dx_campaign::Campaign::resume`] continues in-process.
//! - Trust comes from three layers ([`auth`], [`coordinator`]): a shared
//!   secret proven via HMAC challenge/response before any campaign state
//!   is revealed; spot-checking, where the coordinator re-executes a
//!   sample of claimed difference-inducing inputs through its own model
//!   copies, quarantining non-reproducing claims and evicting workers
//!   whose fabrication rate crosses a threshold; and structural frame
//!   validation (shape checks, pre-admission frame caps, hello
//!   timeouts), so a hostile peer can be rejected but never crash or
//!   stall the service.
//!
//! # Example (in-process fleet over real sockets)
//!
//! ```
//! use dx_campaign::ModelSuite;
//! use deepxplore::constraints::Constraint;
//! use deepxplore::generator::TaskKind;
//! use deepxplore::Hyperparams;
//! use dx_coverage::{CoverageConfig, SignalSpec};
//! use dx_dist::{run_local, CoordinatorConfig, WorkerConfig};
//! use dx_nn::{layer::Layer, Network};
//! use dx_tensor::rng;
//!
//! let mut base = Network::new(
//!     &[8],
//!     vec![Layer::dense(8, 12), Layer::relu(), Layer::dense(12, 3), Layer::softmax()],
//! );
//! base.init_weights(&mut rng::rng(1));
//! let suite = ModelSuite {
//!     models: vec![base.clone(), base.perturbed(0.1, 2), base.perturbed(0.1, 3)],
//!     kind: TaskKind::Classification,
//!     hp: Hyperparams { step: 0.3, max_iters: 20, ..Default::default() },
//!     constraint: Constraint::Clip,
//!     signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
//! };
//! let seeds = rng::uniform(&mut rng::rng(4), &[8, 8], 0.2, 0.8);
//! let cfg = CoordinatorConfig { max_steps: Some(8), batch_per_round: 4, ..Default::default() };
//! let (report, workers) =
//!     run_local(&suite, "doc@test", &seeds, cfg, WorkerConfig::default(), 2).unwrap();
//! assert!(report.steps_done >= 8);
//! assert_eq!(workers.len(), 2);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod coordinator;
pub mod proto;
pub mod shutdown;
pub mod wire;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, DistReport, DrainHandle, WorkerStats};
pub use proto::{Fingerprint, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerConfig, WorkerSummary};

use deepxplore::constraints::Constraint;
use deepxplore::Hyperparams;
use dx_campaign::ModelSuite;
use dx_coverage::CoverageSignal;

/// The admission fingerprint of a model suite: a label both sides agree
/// on, the coverage metric, each model's tracked-unit total under it, a
/// digest of the multisection profile boundaries, and canonical digests
/// of the generation semantics (Algorithm 1 hyperparameters, task
/// oracle, coverage config) and the domain constraint — cheap to
/// compute, and any mismatch in them changes it. Without the digests, a
/// worker running a different step size, oracle threshold or coverage
/// threshold would be silently admitted and pollute the corpus with
/// irreproducible results.
pub fn suite_fingerprint(suite: &ModelSuite, label: &str) -> proto::Fingerprint {
    proto::Fingerprint {
        label: label.to_string(),
        metric: suite.signal.metric.to_string(),
        units: suite.signal.build(&suite.models).iter().map(CoverageSignal::total).collect(),
        profiles: profile_digest(&suite.signal.profiles),
        hyper: hyper_digest(suite),
        constraint: constraint_digest(&suite.constraint),
    }
}

/// Digest of the multisection profile boundaries. Two processes
/// sectioning the same neurons over *different* profiled ranges (training
/// data drifted, or one side restored checkpointed profiles) would ship
/// semantically incompatible section indices — this makes that a rejected
/// admission, not a silently corrupted union.
fn profile_digest(profiles: &[dx_coverage::NeuronProfile]) -> String {
    if profiles.is_empty() {
        return "none".into();
    }
    let bytes: Vec<u8> = profiles
        .iter()
        .flat_map(|p| {
            let (low, high) = p.ranges();
            low.iter().chain(high).flat_map(|v| v.to_bits().to_le_bytes()).collect::<Vec<u8>>()
        })
        .collect();
    format!("fnv:{:016x}", fnv1a64(&bytes))
}

/// Canonical, order-stable rendering of everything besides the models
/// and constraint that shapes a worker's generation stream: the
/// Algorithm 1 hyperparameters, the task oracle (a regression
/// direction-threshold mismatch changes which runs count as
/// differences), and the coverage config (a threshold/scaling mismatch
/// changes which units the same activations cover). Rust float `Debug`
/// is shortest-exact, so equal values digest equally across processes
/// and hosts.
fn hyper_digest(suite: &ModelSuite) -> String {
    let hp: &Hyperparams = &suite.hp;
    let cov = &suite.signal.config;
    format!(
        "l1={:?} l2={:?} s={:?} iters={} dc={:?} pre={} pick={:?} npm={} \
         task={:?} cov_t={:?} cov_scaled={} gran={:?}",
        hp.lambda1,
        hp.lambda2,
        hp.step,
        hp.max_iters,
        hp.desired_coverage,
        hp.count_preexisting,
        hp.neuron_pick,
        hp.neurons_per_model,
        suite.kind,
        cov.threshold,
        cov.scale_per_layer,
        cov.granularity,
    )
}

/// Canonical digest of a domain constraint, parameters included. Bulky
/// vector parameters (feature masks/scales) are FNV-hashed rather than
/// inlined, so the fingerprint stays one short frame.
fn constraint_digest(c: &Constraint) -> String {
    match c {
        Constraint::Clip => "clip".into(),
        Constraint::Lighting => "lighting".into(),
        Constraint::SingleRect { h, w } => format!("single_rect:{h}x{w}"),
        Constraint::MultiRects { size, count } => format!("multi_rects:{size}x{count}"),
        Constraint::DrebinManifest { manifest_mask } => {
            let bytes: Vec<u8> = manifest_mask.iter().map(|&b| b as u8).collect();
            format!("drebin_manifest:{}:{:016x}", manifest_mask.len(), fnv1a64(&bytes))
        }
        Constraint::PdfFeatures { scale } => {
            let bytes: Vec<u8> = scale.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
            format!("pdf_features:{}:{:016x}", scale.len(), fnv1a64(&bytes))
        }
    }
}

/// FNV-1a 64-bit — a dependency-free stable hash for fingerprint digests.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs a whole fleet inside one process over real localhost sockets: a
/// coordinator plus `n_workers` worker threads. The single-machine
/// convenience for tests and benches; production fleets run
/// [`Coordinator::serve`] and [`worker::run_worker`] in separate
/// processes.
///
/// # Errors
///
/// Coordinator serve/checkpoint failures. A worker thread's failure is
/// reported in its summary slot being absent.
pub fn run_local(
    suite: &ModelSuite,
    label: &str,
    seeds: &dx_tensor::Tensor,
    cfg: CoordinatorConfig,
    worker_cfg: WorkerConfig,
    n_workers: usize,
) -> std::io::Result<(DistReport, Vec<WorkerSummary>)> {
    let coordinator = Coordinator::new(suite, label, seeds, cfg);
    serve_local(&coordinator, suite, label, worker_cfg, n_workers)
}

/// [`run_local`] over an existing coordinator (e.g. one built with
/// [`Coordinator::resume`]).
///
/// # Errors
///
/// See [`run_local`].
pub fn serve_local(
    coordinator: &Coordinator,
    suite: &ModelSuite,
    label: &str,
    worker_cfg: WorkerConfig,
    n_workers: usize,
) -> std::io::Result<(DistReport, Vec<WorkerSummary>)> {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let suite = suite.clone();
                let worker_cfg = worker_cfg.clone();
                scope.spawn(move || run_worker(addr, suite, label, worker_cfg))
            })
            .collect();
        let report = coordinator.serve(listener)?;
        let summaries: Vec<WorkerSummary> = handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(summary)) => Some(summary),
                Ok(Err(e)) => {
                    dx_telemetry::events::emit(
                        dx_telemetry::events::Level::Error,
                        "dist",
                        "worker_failed",
                        &[("error", e.to_string().into())],
                    );
                    None
                }
                Err(_) => {
                    dx_telemetry::events::emit(
                        dx_telemetry::events::Level::Error,
                        "dist",
                        "worker_failed",
                        &[("error", "worker thread panicked".into())],
                    );
                    None
                }
            })
            .collect();
        Ok((report, summaries))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepxplore::constraints::Constraint;
    use deepxplore::generator::TaskKind;
    use deepxplore::Hyperparams;
    use dx_campaign::EnergyModel;
    use dx_coverage::{CoverageConfig, SignalSpec};
    use dx_nn::layer::Layer;
    use dx_nn::Network;
    use dx_tensor::{rng, Tensor};
    use proto::Msg;
    use std::time::Duration;

    fn classifier(seed: u64) -> Network {
        let mut n = Network::new(
            &[16],
            vec![Layer::dense(16, 14), Layer::relu(), Layer::dense(14, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    fn suite(seed: u64) -> ModelSuite {
        let base = classifier(seed);
        ModelSuite {
            models: vec![
                base.clone(),
                base.perturbed(0.04, seed + 1),
                base.perturbed(0.04, seed + 2),
            ],
            kind: TaskKind::Classification,
            hp: Hyperparams { step: 0.25, lambda1: 2.0, max_iters: 30, ..Default::default() },
            constraint: Constraint::Clip,
            signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
        }
    }

    fn seed_batch(seed: u64, n: usize) -> Tensor {
        rng::uniform(&mut rng::rng(seed), &[n, 16], 0.2, 0.8)
    }

    /// A current-version `hello` under a fresh worker identity.
    fn hello_msg(fingerprint: Fingerprint) -> Msg {
        Msg::Hello { version: PROTOCOL_VERSION, fingerprint, worker_id: worker::fresh_worker_id() }
    }

    /// A suite steering by k-multisection sections; every process primes
    /// the same profiles from the same stand-in training rows, exactly as
    /// CLI coordinator/worker processes prime from the shared dataset.
    fn ms_suite(seed: u64, k: usize) -> ModelSuite {
        let mut s = suite(seed);
        let train = rng::uniform(&mut rng::rng(seed ^ 0x7a1d), &[40, 16], 0.0, 1.0);
        s.signal = SignalSpec::multisection(CoverageConfig::default(), k, Vec::new())
            .primed(&s.models, &train, 40);
        s
    }

    /// A suite steering by a composite metric spec (e.g.
    /// `multisection:4+boundary`), profiles primed like [`ms_suite`].
    fn composite_suite(seed: u64, spec: &str) -> ModelSuite {
        let mut s = suite(seed);
        let train = rng::uniform(&mut rng::rng(seed ^ 0x7a1d), &[40, 16], 0.0, 1.0);
        s.signal = SignalSpec::of(CoverageConfig::default(), spec.parse().unwrap(), Vec::new())
            .primed(&s.models, &train, 40);
        s
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dx_dist_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick_cfg(max_steps: usize) -> CoordinatorConfig {
        CoordinatorConfig {
            max_steps: Some(max_steps),
            batch_per_round: 6,
            lease_size: 2,
            lease_timeout: Duration::from_secs(5),
            ..Default::default()
        }
    }

    #[test]
    fn two_worker_fleet_completes_a_budget() {
        let s = suite(1);
        let (report, workers) = run_local(
            &s,
            "unit@test",
            &seed_batch(2, 10),
            quick_cfg(12),
            WorkerConfig::default(),
            2,
        )
        .unwrap();
        assert!(report.steps_done >= 12, "budget not met: {}", report.steps_done);
        assert!(!report.report.epochs.is_empty());
        assert_eq!(workers.len(), 2);
        let merged: f32 = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
        assert!(merged > 0.0);
        // The merged union dominates every worker's local view.
        for w in &workers {
            let local: f32 = w.coverage.iter().sum::<f32>() / w.coverage.len() as f32;
            assert!(merged >= local - 1e-6, "merged {merged} < worker {local}");
        }
        // Worker accounting adds up to at least the absorbed budget.
        let worker_steps: usize = report.per_worker.iter().map(|(_, w)| w.steps).sum();
        assert!(worker_steps >= 12);
    }

    #[test]
    fn fleet_reaches_a_coverage_target() {
        let s = suite(10);
        // A single-process campaign run to the same target, for parity.
        let mut solo = dx_campaign::Campaign::new(
            s.clone(),
            &seed_batch(11, 10),
            dx_campaign::CampaignConfig {
                epochs: 100,
                batch_per_epoch: 6,
                desired_coverage: Some(0.10),
                ..Default::default()
            },
        );
        solo.run().unwrap();
        assert!(solo.mean_coverage() >= 0.10);

        let cfg = CoordinatorConfig {
            target_coverage: Some(0.10),
            batch_per_round: 6,
            lease_size: 2,
            ..Default::default()
        };
        let (report, _) =
            run_local(&s, "unit@test", &seed_batch(11, 10), cfg, WorkerConfig::default(), 2)
                .unwrap();
        let merged: f32 = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
        assert!(merged >= 0.10, "fleet stopped at {merged}");
    }

    #[test]
    fn multisection_fleet_matches_single_process_coverage_union() {
        // The finer signal flows end to end: section deltas over the wire,
        // section unions at the coordinator, and a 2-worker fleet reaches
        // the same section-coverage target a single-process campaign does.
        let target = 0.08f32;
        let s = ms_suite(90, 4);
        let mut solo = dx_campaign::Campaign::new(
            s.clone(),
            &seed_batch(91, 10),
            dx_campaign::CampaignConfig {
                epochs: 100,
                batch_per_epoch: 6,
                desired_coverage: Some(target),
                ..Default::default()
            },
        );
        solo.run().unwrap();
        assert!(solo.mean_coverage() >= target, "solo stalled at {}", solo.mean_coverage());

        let cfg = CoordinatorConfig {
            target_coverage: Some(target),
            batch_per_round: 6,
            lease_size: 2,
            ..Default::default()
        };
        let (report, workers) =
            run_local(&s, "ms@test", &seed_batch(91, 10), cfg, WorkerConfig::default(), 2).unwrap();
        let merged: f32 = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
        assert!(merged >= target, "fleet stopped at {merged}");
        // The merged section union dominates every worker's local view.
        for w in &workers {
            let local: f32 = w.coverage.iter().sum::<f32>() / w.coverage.len() as f32;
            assert!(merged >= local - 1e-6, "merged {merged} < worker {local}");
        }
    }

    #[test]
    fn composite_metric_fleet_unions_every_component() {
        // A 2-worker fleet steering by multisection+boundary: the
        // component-prefixed deltas flow over the wire and the merged
        // union dominates every worker's local view — including the
        // boundary corners only one worker may have reached.
        let s = composite_suite(97, "multisection:4+boundary");
        let (report, workers) = run_local(
            &s,
            "comp@test",
            &seed_batch(98, 10),
            quick_cfg(12),
            WorkerConfig::default(),
            2,
        )
        .unwrap();
        assert!(report.steps_done >= 12);
        let merged: f32 = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
        assert!(merged > 0.0);
        for w in &workers {
            let local: f32 = w.coverage.iter().sum::<f32>() / w.coverage.len() as f32;
            assert!(merged >= local - 1e-6, "merged {merged} < worker {local}");
        }
        // Rounds report per-component coverage columns.
        let last = report.report.epochs.last().unwrap();
        assert_eq!(last.component_coverage.len(), 2);
    }

    #[test]
    fn mismatched_composite_metric_is_rejected_at_hello() {
        // A worker running the bare multisection metric (or the same
        // components in a different order) must not join a composite
        // campaign: its flat unit offsets would mean different units.
        let s = composite_suite(99, "multisection:4+boundary");
        let coordinator = Coordinator::new(&s, "comp@test", &seed_batch(100, 4), quick_cfg(4));
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = coordinator.drain_handle();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for wrong_spec in ["multisection:4", "boundary+multisection:4", "boundary"] {
                    let wrong = suite_fingerprint(&composite_suite(99, wrong_spec), "comp@test");
                    let replies = worker::scripted(addr, &[hello_msg(wrong)]).unwrap();
                    assert!(
                        matches!(&replies[0], Msg::Reject { .. }),
                        "`{wrong_spec}` admitted: {:?}",
                        replies[0]
                    );
                }
                // The matching composite spec is admitted.
                let right =
                    suite_fingerprint(&composite_suite(99, "multisection:4+boundary"), "comp@test");
                let replies = worker::scripted(addr, &[hello_msg(right)]).unwrap();
                assert!(matches!(&replies[0], Msg::Welcome { .. }), "{:?}", replies[0]);
                handle.drain();
            });
            coordinator.serve(listener).unwrap();
        });
    }

    #[test]
    fn profile_boundary_mismatch_changes_fingerprint() {
        let a = suite_fingerprint(&ms_suite(95, 4), "x");
        // Re-prime from different training data: identical unit counts,
        // different section boundaries — must not be admissible.
        let mut other = ms_suite(95, 4);
        let train = rng::uniform(&mut rng::rng(0xbeef), &[40, 16], 0.0, 1.0);
        let reprimed = other.signal.clone().primed(&other.models, &train, 40);
        other.signal = reprimed;
        let b = suite_fingerprint(&other, "x");
        assert_eq!(a.units, b.units, "unit totals are boundary-blind by design");
        assert_ne!(a.profiles, b.profiles, "boundary drift must change the digest");
        assert_ne!(a, b);
        // Identical priming digests identically; neuron metric has none.
        assert_eq!(a, suite_fingerprint(&ms_suite(95, 4), "x"));
        assert_eq!(suite_fingerprint(&suite(95), "x").profiles, "none");
        // The task oracle and the coverage config are fingerprinted too:
        // either mismatch silently changes what counts as a difference or
        // as covered, so it must not be admissible.
        let mut oracle = suite(95);
        oracle.kind = TaskKind::Regression { direction_threshold: 0.2 };
        assert_ne!(suite_fingerprint(&suite(95), "x"), suite_fingerprint(&oracle, "x"));
        let mut threshold = suite(95);
        threshold.signal.config.threshold = 0.9;
        assert_ne!(suite_fingerprint(&suite(95), "x"), suite_fingerprint(&threshold, "x"));
    }

    #[test]
    fn rarity_energy_fleet_runs() {
        let s = suite(20);
        let cfg = CoordinatorConfig { energy: EnergyModel::Rarity, ..quick_cfg(8) };
        let (report, _) =
            run_local(&s, "unit@test", &seed_batch(21, 8), cfg, WorkerConfig::default(), 2)
                .unwrap();
        assert!(report.steps_done >= 8);
    }

    #[test]
    fn drain_checkpoint_resume_round_trips() {
        let dir = tmp_dir("resume");
        let s = suite(30);
        let cfg = CoordinatorConfig {
            checkpoint_dir: Some(dir.clone()),
            batch_per_round: 4,
            lease_size: 2,
            lease_timeout: Duration::from_secs(5),
            max_steps: Some(8),
            ..Default::default()
        };
        let (first, _) =
            run_local(&s, "unit@test", &seed_batch(31, 8), cfg.clone(), WorkerConfig::default(), 2)
                .unwrap();
        assert!(first.steps_done >= 8);

        // The checkpoint is a valid plain campaign checkpoint too.
        let state = dx_campaign::checkpoint::load(&dir).unwrap();
        assert_eq!(state.epochs.len(), first.report.epochs.len());
        assert!(state.coverage.is_some());

        // Resume the fleet with a larger budget; steps continue counting.
        let resumed =
            Coordinator::resume(&s, "unit@test", CoordinatorConfig { max_steps: Some(16), ..cfg })
                .unwrap();
        assert_eq!(resumed.steps_done(), first.steps_done);
        let before = resumed.mean_coverage();
        let (second, _) =
            serve_local(&resumed, &s, "unit@test", WorkerConfig::default(), 2).unwrap();
        assert!(second.steps_done >= 16);
        assert!(second.report.epochs.len() > first.report.epochs.len());
        let after: f32 = second.coverage.iter().sum::<f32>() / second.coverage.len() as f32;
        assert!(after >= before - 1e-6, "coverage regressed on resume");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_handle_stops_an_unbounded_campaign() {
        let dir = tmp_dir("drain");
        let s = suite(40);
        let coordinator = Coordinator::new(
            &s,
            "unit@test",
            &seed_batch(41, 8),
            CoordinatorConfig {
                checkpoint_dir: Some(dir.clone()),
                batch_per_round: 4,
                lease_size: 1,
                ..Default::default() // No budget: would run until exhaustion.
            },
        );
        let handle = coordinator.drain_handle();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let (report, summary) = std::thread::scope(|scope| {
            let w = {
                let s = s.clone();
                scope.spawn(move || run_worker(addr, s, "unit@test", WorkerConfig::default()))
            };
            // SIGTERM stand-in: drain shortly after work starts.
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(300));
                handle.drain();
            });
            let report = coordinator.serve(listener).unwrap();
            (report, w.join().unwrap().unwrap())
        });
        assert_eq!(report.steps_done, summary.steps);
        // The drain checkpoint resumes.
        let resumed = Coordinator::resume(
            &s,
            "unit@test",
            CoordinatorConfig {
                checkpoint_dir: Some(dir.clone()),
                max_steps: Some(report.steps_done + 4),
                batch_per_round: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let (second, _) =
            serve_local(&resumed, &s, "unit@test", WorkerConfig::default(), 1).unwrap();
        assert!(second.steps_done >= report.steps_done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandoned_lease_is_requeued_and_campaign_still_finishes() {
        let s = suite(50);
        let coordinator = Coordinator::new(
            &s,
            "unit@test",
            &seed_batch(51, 6),
            CoordinatorConfig {
                max_steps: Some(6),
                batch_per_round: 3,
                lease_size: 3,
                lease_timeout: Duration::from_millis(300),
                ..Default::default()
            },
        );
        let fingerprint = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let report = std::thread::scope(|scope| {
            // A bad worker that takes a lease and vanishes.
            scope.spawn(move || {
                let replies = worker::scripted(
                    addr,
                    &[hello_msg(fingerprint), Msg::LeaseRequest { slot: 0, want: 3 }],
                )
                .unwrap();
                assert!(matches!(replies[0], Msg::Welcome { slot: 0, .. }));
                assert!(matches!(replies[1], Msg::Lease { .. }));
                // Dropping the stream abandons the lease.
            });
            // An honest worker joins a beat later and must still be able to
            // fuzz the abandoned seeds.
            let honest = {
                let s = s.clone();
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(100));
                    run_worker(addr, s, "unit@test", WorkerConfig::default())
                })
            };
            let report = coordinator.serve(listener).unwrap();
            honest.join().unwrap().unwrap();
            report
        });
        assert!(report.steps_done >= 6, "requeue failed: {} steps", report.steps_done);
    }

    #[test]
    fn late_results_for_an_expired_lease_are_salvaged() {
        // A lease whose only worker outlives the timeout: the seeds are
        // requeued, but when the results finally arrive and nobody else
        // has re-leased those seeds, the work is counted, not redone.
        let s = suite(70);
        let coordinator = Coordinator::new(
            &s,
            "unit@test",
            &seed_batch(71, 3),
            CoordinatorConfig {
                max_steps: Some(3),
                batch_per_round: 3,
                lease_size: 3,
                lease_timeout: Duration::from_millis(150),
                ..Default::default()
            },
        );
        let fingerprint = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let report = std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                let hello = hello_msg(fingerprint);
                crate::wire::write_frame(&mut stream, &hello.to_json()).unwrap();
                let _ = crate::wire::read_frame(&mut stream).unwrap();
                let req = Msg::LeaseRequest { slot: 0, want: 3 };
                crate::wire::write_frame(&mut stream, &req.to_json()).unwrap();
                let reply = Msg::from_json(&crate::wire::read_frame(&mut stream).unwrap()).unwrap();
                let Msg::Lease { lease, jobs, .. } = reply else { panic!("{reply:?}") };
                // Outlive the lease (no heartbeat), then report anyway.
                std::thread::sleep(Duration::from_millis(600));
                let items = jobs
                    .iter()
                    .map(|j| crate::proto::JobResult {
                        seed_id: j.seed_id,
                        run: deepxplore::SeedRun {
                            test: None,
                            preexisting: false,
                            iterations: 1,
                            newly_covered: 0,
                            newly_by_component: Vec::new(),
                            corpus_candidate: None,
                        },
                    })
                    .collect();
                let results = Msg::Results {
                    slot: 0,
                    lease,
                    campaign: 0,
                    items,
                    cov: vec![Vec::new(); 3],
                    rng_state: [1, 2, 3, 4],
                    telemetry: None,
                };
                crate::wire::write_frame(&mut stream, &results.to_json()).unwrap();
                let ack = Msg::from_json(&crate::wire::read_frame(&mut stream).unwrap()).unwrap();
                // The budget is met by the salvaged steps, so the reply
                // is the drain notice.
                assert!(matches!(ack, Msg::Drain), "{ack:?}");
                crate::wire::write_frame(&mut stream, &Msg::Bye.to_json()).unwrap();
            });
            coordinator.serve(listener).unwrap()
        });
        assert_eq!(report.steps_done, 3, "expired-lease results were not salvaged");
    }

    /// Scripted raw frame exchange against `addr`; returns the reply.
    fn raw_exchange(stream: &mut std::net::TcpStream, msg: &Msg) -> std::io::Result<Msg> {
        crate::wire::write_frame(stream, &msg.to_json())?;
        Msg::from_json(&crate::wire::read_frame(stream)?)
    }

    fn empty_run(iterations: usize) -> deepxplore::SeedRun {
        deepxplore::SeedRun {
            test: None,
            preexisting: false,
            iterations,
            newly_covered: 0,
            newly_by_component: Vec::new(),
            corpus_candidate: None,
        }
    }

    #[test]
    fn wrong_token_is_rejected_at_hello_without_revealing_state() {
        let s = suite(110);
        let cfg = CoordinatorConfig { auth_token: Some("fleet-secret".into()), ..quick_cfg(4) };
        let coordinator = Coordinator::new(&s, "unit@test", &seed_batch(111, 4), cfg);
        let fingerprint = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = coordinator.drain_handle();
        std::thread::scope(|scope| {
            let fp = fingerprint.clone();
            scope.spawn(move || {
                // Wrong token: challenged, then rejected — and the reject
                // must not leak any campaign state (fingerprint, seed).
                let replies = worker::scripted_with_token(
                    addr,
                    Some("wrong-secret"),
                    &[hello_msg(fp.clone())],
                )
                .unwrap();
                match &replies[0] {
                    Msg::Reject { reason } => {
                        assert!(reason.contains("authentication"), "{reason}");
                        assert!(!reason.contains("fingerprint"), "leaked state: {reason}");
                    }
                    other => panic!("wrong token admitted: {other:?}"),
                }
                // No token at all: the challenge goes unanswered; trying to
                // push past it without a proof is rejected too.
                let replies = worker::scripted(
                    addr,
                    &[hello_msg(fp.clone()), Msg::LeaseRequest { slot: 0, want: 1 }],
                )
                .unwrap();
                assert!(matches!(&replies[0], Msg::Challenge { .. }), "{:?}", replies[0]);
                assert!(matches!(&replies[1], Msg::Reject { .. }), "{:?}", replies[1]);
                // A proof without an outstanding challenge is rejected.
                let replies =
                    worker::scripted(addr, &[Msg::AuthProof { proof: "00".into() }]).unwrap();
                assert!(matches!(&replies[0], Msg::Reject { .. }), "{:?}", replies[0]);
                // The right token is admitted.
                let replies =
                    worker::scripted_with_token(addr, Some("fleet-secret"), &[hello_msg(fp)])
                        .unwrap();
                assert!(matches!(&replies[0], Msg::Welcome { .. }), "{:?}", replies[0]);
                handle.drain();
            });
            coordinator.serve(listener).unwrap();
        });
    }

    #[test]
    fn authenticated_fleet_completes_a_budget() {
        let s = suite(115);
        let cfg = CoordinatorConfig { auth_token: Some("tok".into()), ..quick_cfg(8) };
        let worker_cfg = WorkerConfig { auth_token: Some("tok".into()), ..Default::default() };
        let (report, workers) =
            run_local(&s, "unit@test", &seed_batch(116, 8), cfg, worker_cfg, 2).unwrap();
        assert!(report.steps_done >= 8);
        assert_eq!(workers.len(), 2);
        // A worker without the token cannot join the same kind of fleet.
        let cfg = CoordinatorConfig { auth_token: Some("tok".into()), ..quick_cfg(4) };
        let (_, summaries) = run_local(
            &s,
            "unit@test",
            &seed_batch(116, 8),
            CoordinatorConfig { duration: Some(Duration::from_millis(800)), ..cfg },
            WorkerConfig::default(), // no token
            1,
        )
        .unwrap();
        assert!(summaries.is_empty(), "tokenless worker joined an authenticated fleet");
    }

    #[test]
    fn fabricated_diffs_are_quarantined_and_the_worker_evicted() {
        let s = suite(120);
        let coordinator = Coordinator::new(
            &s,
            "unit@test",
            &seed_batch(121, 8),
            CoordinatorConfig { spot_check_rate: 1.0, ..quick_cfg(8) },
        );
        let fingerprint = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let report = std::thread::scope(|scope| {
            let s2 = s.clone();
            let coord = &coordinator;
            // The fabricator runs first; once it is evicted, the same
            // thread checks that nothing it claimed stuck, then an honest
            // worker finishes the campaign on the requeued seeds.
            scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                let hello = hello_msg(fingerprint);
                let welcome = raw_exchange(&mut stream, &hello).unwrap();
                let Msg::Welcome { slot, .. } = welcome else { panic!("{welcome:?}") };
                let req = Msg::LeaseRequest { slot, want: 2 };
                let reply = raw_exchange(&mut stream, &req).unwrap();
                let Msg::Lease { lease, jobs, .. } = reply else { panic!("{reply:?}") };
                assert!(jobs.len() >= 2, "need two jobs to cross TRUST_MIN_CHECKS");
                // Fabricate a difference claim per job: the models agree on
                // these plain seeds, so re-execution cannot reproduce the
                // claimed disagreement. Also claim a fat coverage delta —
                // it must be discarded along with the lease.
                let items: Vec<crate::proto::JobResult> = jobs
                    .iter()
                    .map(|j| crate::proto::JobResult {
                        seed_id: j.seed_id,
                        run: deepxplore::SeedRun {
                            test: Some(deepxplore::GeneratedTest {
                                seed_index: j.seed_id,
                                input: j.input.clone(),
                                iterations: 3,
                                predictions: vec![
                                    deepxplore::diff::Prediction::Class(0),
                                    deepxplore::diff::Prediction::Class(1),
                                    deepxplore::diff::Prediction::Class(2),
                                ],
                                target_model: 0,
                            }),
                            ..empty_run(3)
                        },
                    })
                    .collect();
                let signals = s2.signal.build(&s2.models);
                let fat_cov: Vec<Vec<usize>> =
                    signals.iter().map(|sig| (0..sig.total()).collect()).collect();
                let results = Msg::Results {
                    slot,
                    lease,
                    campaign: 0,
                    items,
                    cov: fat_cov,
                    rng_state: [1, 2, 3, 4],
                    telemetry: None,
                };
                let verdict = raw_exchange(&mut stream, &results).unwrap();
                let Msg::Reject { reason } = verdict else {
                    panic!("fabricator was not evicted: {verdict:?}")
                };
                assert!(reason.contains("evicted"), "{reason}");
                // Nothing the fabricator claimed entered campaign state.
                assert!(coord.quarantined() >= 2, "claims were not quarantined");
                assert_eq!(coord.mean_coverage(), 0.0, "fabricated coverage polluted the union");
                assert_eq!(coord.steps_done(), 0, "fabricated steps were absorbed");
                run_worker(addr, s2, "unit@test", WorkerConfig::default()).unwrap();
            });
            coordinator.serve(listener).unwrap()
        });
        assert!(report.steps_done >= 8, "campaign starved: {} steps", report.steps_done);
        assert!(report.quarantined >= 2);
        let evicted: Vec<_> = report.per_worker.iter().filter(|(_, w)| w.evicted).collect();
        assert_eq!(evicted.len(), 1, "exactly the fabricator is evicted: {:?}", report.per_worker);
        assert!(evicted[0].1.spot_failed >= 2);
    }

    #[test]
    fn evicted_identity_cannot_rejoin_by_reconnecting() {
        let dir = tmp_dir("evict_identity");
        let s = suite(170);
        let cfg = CoordinatorConfig {
            spot_check_rate: 1.0,
            checkpoint_dir: Some(dir.clone()),
            ..quick_cfg(6)
        };
        let coordinator = Coordinator::new(&s, "unit@test", &seed_batch(171, 6), cfg);
        let fp = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let s2 = s.clone();
            let fp2 = fp.clone();
            scope.spawn(move || {
                let named = |id: &str| Msg::Hello {
                    version: PROTOCOL_VERSION,
                    fingerprint: fp2.clone(),
                    worker_id: id.into(),
                };
                // "mallory" fabricates diff claims and is evicted.
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                let w = raw_exchange(&mut stream, &named("mallory")).unwrap();
                let Msg::Welcome { slot, .. } = w else { panic!("{w:?}") };
                let reply =
                    raw_exchange(&mut stream, &Msg::LeaseRequest { slot, want: 2 }).unwrap();
                let Msg::Lease { lease, jobs, .. } = reply else { panic!("{reply:?}") };
                let items = jobs
                    .iter()
                    .map(|j| crate::proto::JobResult {
                        seed_id: j.seed_id,
                        run: deepxplore::SeedRun {
                            test: Some(deepxplore::GeneratedTest {
                                seed_index: j.seed_id,
                                input: j.input.clone(),
                                iterations: 1,
                                predictions: vec![
                                    deepxplore::diff::Prediction::Class(0),
                                    deepxplore::diff::Prediction::Class(1),
                                    deepxplore::diff::Prediction::Class(2),
                                ],
                                target_model: 0,
                            }),
                            ..empty_run(1)
                        },
                    })
                    .collect();
                let results = Msg::Results {
                    slot,
                    lease,
                    campaign: 0,
                    items,
                    cov: vec![Vec::new(); 3],
                    rng_state: [1; 4],
                    telemetry: None,
                };
                let verdict = raw_exchange(&mut stream, &results).unwrap();
                assert!(
                    matches!(&verdict, Msg::Reject { reason } if reason.contains("evicted")),
                    "{verdict:?}"
                );
                drop(stream);
                // Reconnecting under the same identity is refused at
                // admission: eviction is keyed to the identity, not the
                // connection slot.
                let replies = worker::scripted(addr, &[named("mallory")]).unwrap();
                match &replies[0] {
                    Msg::Reject { reason } => assert!(reason.contains("evicted"), "{reason}"),
                    other => panic!("evicted identity re-admitted: {other:?}"),
                }
                // A fresh identity gets a fresh slot — never the burned one.
                let mut live = std::net::TcpStream::connect(addr).unwrap();
                let w = raw_exchange(&mut live, &named("trent")).unwrap();
                let Msg::Welcome { slot: trent_slot, .. } = w else { panic!("{w:?}") };
                assert_ne!(trent_slot, slot, "fresh identity inherited the burned slot");
                // While "trent" is live, a second connection claiming the
                // same identity is refused.
                let replies = worker::scripted(addr, &[named("trent")]).unwrap();
                match &replies[0] {
                    Msg::Reject { reason } => assert!(reason.contains("connected"), "{reason}"),
                    other => panic!("duplicate live identity admitted: {other:?}"),
                }
                drop(live);
                run_worker(addr, s2, "unit@test", WorkerConfig::default()).unwrap();
            });
            coordinator.serve(listener).unwrap();
        });
        // The identity→slot binding and the eviction survive a restart via
        // dist.json v3: "mallory" stays locked out of the resumed fleet.
        let resumed = Coordinator::resume(
            &s,
            "unit@test",
            CoordinatorConfig {
                spot_check_rate: 1.0,
                checkpoint_dir: Some(dir.clone()),
                ..quick_cfg(12)
            },
        )
        .unwrap();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = resumed.drain_handle();
        let fp2 = fp.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let hello = Msg::Hello {
                    version: PROTOCOL_VERSION,
                    fingerprint: fp2,
                    worker_id: "mallory".into(),
                };
                let replies = worker::scripted(addr, &[hello]).unwrap();
                match &replies[0] {
                    Msg::Reject { reason } => assert!(reason.contains("evicted"), "{reason}"),
                    other => panic!("eviction lost across restart: {other:?}"),
                }
                handle.drain();
            });
            resumed.serve(listener).unwrap();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn honest_fleet_results_are_unchanged_by_spot_checking() {
        // Verification must be free for the innocent: a single-worker
        // fleet (deterministic) produces bit-identical corpus, coverage
        // and diffs whether every claim is re-checked or none is.
        let run = |rate: f32| {
            let dir = tmp_dir(&format!("spotrate_{}", (rate * 100.0) as u32));
            let cfg = CoordinatorConfig {
                spot_check_rate: rate,
                checkpoint_dir: Some(dir.clone()),
                ..quick_cfg(10)
            };
            let (report, _) = run_local(
                &suite(130),
                "unit@test",
                &seed_batch(131, 8),
                cfg,
                WorkerConfig::default(),
                1,
            )
            .unwrap();
            let state = dx_campaign::checkpoint::load(&dir).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            (report, state)
        };
        let (unchecked, state_a) = run(0.0);
        let (checked, state_b) = run(1.0);
        assert_eq!(unchecked.steps_done, checked.steps_done);
        assert_eq!(unchecked.coverage, checked.coverage);
        assert_eq!(unchecked.diffs, checked.diffs);
        assert_eq!(checked.quarantined, 0, "honest claims were quarantined");
        assert_eq!(state_a.corpus.len(), state_b.corpus.len());
        for (a, b) in state_a.corpus.iter().zip(&state_b.corpus) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.input, b.input);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        }
        // And the honest worker's claims really were checked.
        let w_checked: usize = checked.per_worker.iter().map(|(_, w)| w.spot_checked).sum();
        assert_eq!(w_checked, checked.diffs, "spot-check sampling at rate 1.0 missed claims");
    }

    #[test]
    fn adaptive_leases_grow_for_fast_workers() {
        let s = suite(140);
        let coordinator = Coordinator::new(
            &s,
            "unit@test",
            &seed_batch(141, 32),
            CoordinatorConfig {
                lease_size: 4,
                lease_max: 16,
                max_steps: Some(64),
                batch_per_round: 16,
                ..Default::default()
            },
        );
        let fingerprint = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = coordinator.drain_handle();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                let hello = hello_msg(fingerprint);
                let Msg::Welcome { slot, .. } = raw_exchange(&mut stream, &hello).unwrap() else {
                    panic!("not welcomed")
                };
                let mut sizes = Vec::new();
                for _ in 0..3 {
                    // `want: 1` is advisory — the adaptive coordinator
                    // grants its learned quota instead.
                    let req = Msg::LeaseRequest { slot, want: 1 };
                    let reply = raw_exchange(&mut stream, &req).unwrap();
                    let Msg::Lease { lease, jobs, .. } = reply else { panic!("{reply:?}") };
                    sizes.push(jobs.len());
                    // Instant (empty but honest) results: maximum observed
                    // throughput, so the quota should double.
                    let items = jobs
                        .iter()
                        .map(|j| crate::proto::JobResult { seed_id: j.seed_id, run: empty_run(1) })
                        .collect();
                    let results = Msg::Results {
                        slot,
                        lease,
                        campaign: 0,
                        items,
                        cov: vec![Vec::new(); 3],
                        rng_state: [5, 6, 7, 8],
                        telemetry: None,
                    };
                    match raw_exchange(&mut stream, &results).unwrap() {
                        Msg::Ack { .. } | Msg::Drain => {}
                        other => panic!("{other:?}"),
                    }
                }
                assert_eq!(sizes, vec![4, 8, 16], "lease quota failed to grow");
                handle.drain();
            });
            coordinator.serve(listener).unwrap();
        });
    }

    #[test]
    fn garbage_frames_get_a_clean_reject_and_never_stall_the_service() {
        use std::io::{Read as _, Write as _};
        let s = suite(150);
        let coordinator = Coordinator::new(&s, "unit@test", &seed_batch(151, 6), quick_cfg(6));
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let report = std::thread::scope(|scope| {
            scope.spawn(move || {
                // (a) An oversized length prefix (a 4 GiB frame claim).
                // Nothing past the prefix: the server closes after its
                // reject, and unread bytes would turn that close into a
                // TCP reset racing the reject frame.
                let mut a = std::net::TcpStream::connect(addr).unwrap();
                a.write_all(&[0xff, 0xff, 0xff, 0xff]).unwrap();
                match Msg::from_json(&crate::wire::read_frame(&mut a).unwrap()) {
                    Ok(Msg::Reject { reason }) => assert!(reason.contains("frame"), "{reason}"),
                    other => panic!("no clean reject for the length bomb: {other:?}"),
                }
                // The coordinator closed its side after the reject.
                let mut rest = Vec::new();
                assert_eq!(a.read_to_end(&mut rest).unwrap(), 0);
                // (b) A well-framed payload that is not JSON.
                let mut b = std::net::TcpStream::connect(addr).unwrap();
                b.write_all(&7u32.to_be_bytes()).unwrap();
                b.write_all(b"GET /!!").unwrap();
                match Msg::from_json(&crate::wire::read_frame(&mut b).unwrap()) {
                    Ok(Msg::Reject { .. }) => {}
                    other => panic!("no clean reject for non-JSON: {other:?}"),
                }
                // (c) Valid JSON that is not a protocol message.
                let mut c = std::net::TcpStream::connect(addr).unwrap();
                let doc = dx_campaign::json::build::obj(vec![(
                    "type",
                    dx_campaign::json::build::str("warp"),
                )]);
                crate::wire::write_frame(&mut c, &doc).unwrap();
                match Msg::from_json(&crate::wire::read_frame(&mut c).unwrap()) {
                    Ok(Msg::Reject { reason }) => assert!(reason.contains("malformed"), "{reason}"),
                    other => panic!("no clean reject for a bogus message: {other:?}"),
                }
                // (d) A connection that says nothing at all, held open
                // while the real campaign runs below.
                std::net::TcpStream::connect(addr).unwrap()
            });
            // The accept loop is unfazed: an honest worker joins after all
            // that and the campaign completes.
            let honest = {
                let s = s.clone();
                scope.spawn(move || run_worker(addr, s, "unit@test", WorkerConfig::default()))
            };
            let report = coordinator.serve(listener).unwrap();
            honest.join().unwrap().unwrap();
            report
        });
        assert!(report.steps_done >= 6, "garbage clients stalled the campaign");
    }

    #[test]
    fn never_issued_lease_id_is_rejected_with_its_coverage() {
        // An admitted worker reporting results for a lease id this
        // coordinator never issued: nothing about the frame — its fat
        // coverage claim included — is credible.
        let s = suite(155);
        let coordinator = Coordinator::new(&s, "unit@test", &seed_batch(156, 6), quick_cfg(6));
        let fingerprint = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = coordinator.drain_handle();
        std::thread::scope(|scope| {
            let coord = &coordinator;
            scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                let hello = hello_msg(fingerprint);
                let welcome = raw_exchange(&mut stream, &hello).unwrap();
                let Msg::Welcome { slot, .. } = welcome else { panic!("{welcome:?}") };
                let bogus = Msg::Results {
                    slot,
                    lease: 9999,
                    campaign: 0,
                    items: Vec::new(),
                    cov: vec![(0..5).collect(); 3],
                    rng_state: [1; 4],
                    telemetry: None,
                };
                match raw_exchange(&mut stream, &bogus).unwrap() {
                    Msg::Reject { reason } => assert!(reason.contains("lease"), "{reason}"),
                    other => panic!("never-issued lease accepted: {other:?}"),
                }
                assert_eq!(coord.mean_coverage(), 0.0, "bogus coverage entered the union");
                handle.drain();
            });
            coordinator.serve(listener).unwrap();
        });
    }

    #[test]
    fn trust_state_round_trips_through_dist_json() {
        // Quarantine and per-slot trust survive a drain + resume.
        let dir = tmp_dir("trust_resume");
        let s = suite(160);
        let coordinator = Coordinator::new(
            &s,
            "unit@test",
            &seed_batch(161, 6),
            CoordinatorConfig {
                spot_check_rate: 1.0,
                checkpoint_dir: Some(dir.clone()),
                ..quick_cfg(6)
            },
        );
        let fingerprint = coordinator.fingerprint().clone();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                let hello = hello_msg(fingerprint);
                let Msg::Welcome { slot, .. } = raw_exchange(&mut stream, &hello).unwrap() else {
                    panic!("not welcomed")
                };
                let req = Msg::LeaseRequest { slot, want: 2 };
                let Msg::Lease { lease, jobs, .. } = raw_exchange(&mut stream, &req).unwrap()
                else {
                    panic!("no lease")
                };
                let items = jobs
                    .iter()
                    .map(|j| crate::proto::JobResult {
                        seed_id: j.seed_id,
                        run: deepxplore::SeedRun {
                            test: Some(deepxplore::GeneratedTest {
                                seed_index: j.seed_id,
                                input: j.input.clone(),
                                iterations: 1,
                                predictions: vec![
                                    deepxplore::diff::Prediction::Class(0),
                                    deepxplore::diff::Prediction::Class(1),
                                    deepxplore::diff::Prediction::Class(2),
                                ],
                                target_model: 0,
                            }),
                            ..empty_run(1)
                        },
                    })
                    .collect();
                let results = Msg::Results {
                    slot,
                    lease,
                    campaign: 0,
                    items,
                    cov: vec![Vec::new(); 3],
                    rng_state: [1; 4],
                    telemetry: None,
                };
                let _ = raw_exchange(&mut stream, &results);
            });
            let honest = {
                let s = s.clone();
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(200));
                    run_worker(addr, s, "unit@test", WorkerConfig::default())
                })
            };
            let report = coordinator.serve(listener).unwrap();
            honest.join().unwrap().unwrap();
            assert!(report.quarantined >= 1);
        });
        let registry = dx_telemetry::MetricsRegistry::new();
        let quarantined_before = {
            let resumed = Coordinator::resume(
                &s,
                "unit@test",
                CoordinatorConfig {
                    spot_check_rate: 1.0,
                    checkpoint_dir: Some(dir.clone()),
                    registry: registry.clone(),
                    ..quick_cfg(12)
                },
            )
            .unwrap();
            resumed.quarantined()
        };
        assert!(quarantined_before >= 1, "quarantine lost across resume");
        // The resume seeded the registry's trust ledger from dist.json, so
        // fabrication history carries across restarts.
        let bad = registry.counter("dx_spot_checks_total", &[("slot", "0"), ("verdict", "bad")]);
        assert!(bad.get() >= 1, "trust counters not seeded from checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_without_hello_is_rejected() {
        let s = suite(80);
        let coordinator = Coordinator::new(&s, "unit@test", &seed_batch(81, 4), quick_cfg(4));
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = coordinator.drain_handle();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let replies =
                    worker::scripted(addr, &[Msg::Heartbeat { slot: 0, lease: 0 }]).unwrap();
                assert!(matches!(&replies[0], Msg::Reject { .. }), "{:?}", replies[0]);
                handle.drain();
            });
            coordinator.serve(listener).unwrap();
        });
    }

    #[test]
    fn mismatched_fingerprint_is_rejected() {
        let s = suite(60);
        let coordinator = Coordinator::new(&s, "unit@test", &seed_batch(61, 4), quick_cfg(4));
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = coordinator.drain_handle();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let wrong =
                    Fingerprint { label: "other@test".into(), ..suite_fingerprint(&s, "x") };
                let replies = worker::scripted(addr, &[hello_msg(wrong)]).unwrap();
                assert!(matches!(&replies[0], Msg::Reject { .. }), "{:?}", replies[0]);
                // A worker with mismatched hyperparameters (here: a
                // different step size) is rejected, not silently admitted.
                let mut hp_suite = s.clone();
                hp_suite.hp.step = 0.5;
                let hp_mismatch = suite_fingerprint(&hp_suite, "unit@test");
                let replies = worker::scripted(addr, &[hello_msg(hp_mismatch)]).unwrap();
                assert!(matches!(&replies[0], Msg::Reject { .. }), "{:?}", replies[0]);
                // So is one with a mismatched constraint...
                let mut c_suite = s.clone();
                c_suite.constraint = Constraint::Lighting;
                let c_mismatch = suite_fingerprint(&c_suite, "unit@test");
                let replies = worker::scripted(addr, &[hello_msg(c_mismatch)]).unwrap();
                assert!(matches!(&replies[0], Msg::Reject { .. }), "{:?}", replies[0]);
                // ...or a mismatched coverage metric.
                let mut m_fp = suite_fingerprint(&s, "unit@test");
                m_fp.metric = "multisection:4".into();
                let replies = worker::scripted(addr, &[hello_msg(m_fp)]).unwrap();
                assert!(matches!(&replies[0], Msg::Reject { .. }), "{:?}", replies[0]);
                // A stale protocol version is rejected too.
                let fp = suite_fingerprint(&s, "unit@test");
                let replies = worker::scripted(
                    addr,
                    &[Msg::Hello {
                        version: PROTOCOL_VERSION + 1,
                        fingerprint: fp,
                        worker_id: "t-stale".into(),
                    }],
                )
                .unwrap();
                assert!(matches!(&replies[0], Msg::Reject { .. }), "{:?}", replies[0]);
                handle.drain();
            });
            coordinator.serve(listener).unwrap();
        });
    }

    #[test]
    fn dist_report_render_is_stable() {
        // Satellite guard: the per-worker table must render byte-for-byte
        // as it did when the trust columns lived on the structs, now that
        // they are read back from the metrics registry.
        let report = DistReport {
            report: dx_campaign::CampaignReport { epochs: Vec::new(), workers: 2 },
            coverage: vec![0.5, 0.5],
            steps_done: 12,
            per_worker: vec![
                (
                    0,
                    WorkerStats {
                        steps: 8,
                        diffs: 1,
                        contributed_neurons: 5,
                        spot_checked: 3,
                        spot_failed: 0,
                        evicted: false,
                    },
                ),
                (
                    1,
                    WorkerStats {
                        steps: 4,
                        diffs: 0,
                        contributed_neurons: 2,
                        spot_checked: 2,
                        spot_failed: 2,
                        evicted: true,
                    },
                ),
            ],
            diffs: 1,
            quarantined: 2,
        };
        let full = report.render();
        let table = full.strip_prefix(&report.report.render()).expect("campaign prefix");
        let expected = "slot         steps     diffs   new-units   spot-ok  spot-bad  status\n\
                        0                8         1           5         3         0  ok\n\
                        1                4         0           2         0         2  evicted\n\
                        2 claimed diff(s) failed spot-checks and were quarantined\n";
        assert_eq!(table, expected);
    }

    #[test]
    fn fleet_metrics_are_scrapable_over_http() {
        // End-to-end observability: a 2-worker fleet with full
        // spot-checking reports its hot-path and trust series through the
        // injected registry, served over the Prometheus endpoint.
        let registry = dx_telemetry::MetricsRegistry::new();
        let cfg =
            CoordinatorConfig { registry: registry.clone(), spot_check_rate: 1.0, ..quick_cfg(10) };
        let (report, _) = run_local(
            &suite(200),
            "unit@test",
            &seed_batch(201, 8),
            cfg,
            WorkerConfig::default(),
            2,
        )
        .unwrap();
        let server = dx_telemetry::http::serve("127.0.0.1:0", registry.clone()).unwrap();
        let text = dx_telemetry::http::scrape(server.addr()).unwrap();
        let series = |name: &str| {
            text.lines()
                .filter(|l| l.starts_with(name))
                .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
                .sum::<f64>()
        };
        assert_eq!(series("dx_seeds_total") as usize, report.steps_done, "{text}");
        assert!(series("dx_leases_total") >= 1.0, "{text}");
        assert!(series("dx_lease_turnaround_seconds_count{") >= 1.0, "{text}");
        assert!(series("dx_spot_checks_total{") >= 1.0, "{text}");
        // Worker-shipped phase deltas were merged under the known names.
        assert!(series("dx_phase_seconds_count{phase=\"forward\"}") >= 1.0, "{text}");
        assert!(series("dx_phase_seconds_count{phase=\"gradient\"}") >= 1.0, "{text}");
        // Trust columns in the report agree with the registry counters.
        let checked: usize = report.per_worker.iter().map(|(_, w)| w.spot_checked).sum();
        assert_eq!(series("dx_spot_checks_total{") as usize, checked);
    }
}
