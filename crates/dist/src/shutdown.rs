//! Graceful-shutdown signal handling without a signal-handling crate.
//!
//! The workspace is dependency-free by policy, and `std` exposes no way to
//! catch SIGTERM, so this module installs handlers through the C runtime's
//! `signal(2)` directly. The handler body is as small as async-signal
//! safety demands: a single relaxed store into a static flag, which the
//! serving loops poll between accept rounds. The first SIGTERM or SIGINT
//! therefore *requests* a drain (finish in-flight leases, write a final
//! checkpoint); a second one falls back to the runtime default and kills
//! the process, so an operator is never locked out of a hard stop.
//!
//! On non-Unix targets [`install`] is a no-op and [`requested`] only ever
//! reports `false` — Ctrl-C then terminates the process the default way.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set from the signal handler; polled by serving loops.
static REQUESTED: AtomicBool = AtomicBool::new(false);

// The crate denies `unsafe_code`; this module is the one sanctioned
// exception — `signal(2)` has no safe std equivalent, and the handler
// body is a single relaxed atomic store.
#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::*;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_DFL` — restore default disposition.
    const SIG_DFL: usize = 0;

    unsafe extern "C" {
        /// `signal(2)` from the C runtime. Returns the previous handler.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Async-signal-safe by construction: one atomic store, then re-arms
    /// the default disposition so the *next* signal terminates.
    extern "C" fn on_signal(signum: i32) {
        REQUESTED.store(true, Ordering::Relaxed);
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGINT/SIGTERM handlers that flip the drain flag. Idempotent;
/// call once near the top of a long-running command.
pub fn install() {
    imp::install();
}

/// True once a shutdown signal has arrived.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Sets the flag programmatically — lets tests (and in-process callers)
/// exercise the drain path without delivering a real signal.
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

/// Clears the flag. Tests only; a real process shuts down once.
pub fn reset() {
    REQUESTED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
