//! The campaign coordinator: owns the corpus and the global coverage
//! union, leases seeds to workers, and folds results back in.
//!
//! One logical campaign, many OS processes. The coordinator is the only
//! holder of mutable campaign state; workers are stateless between leases
//! (beyond their generator RNG, which they report back for checkpointing).
//! Scheduling is the same energy-proportional draw as the in-process
//! engine, with leased seeds excluded so no two workers fuzz the same
//! entry concurrently.
//!
//! **Liveness.** Every lease carries a deadline, extended by worker
//! heartbeats; an expired lease's seeds are requeued for the next worker,
//! and results arriving for an expired lease still contribute their
//! coverage but are otherwise dropped. A dead connection requeues its
//! leases immediately.
//!
//! **Drain.** A drain (budget reached, coverage target met, corpus
//! exhausted, or an external [`DrainHandle`]) answers every following
//! lease request with `drain`, waits for outstanding leases to land or
//! expire, flushes the partial round, and writes a final checkpoint —
//! the standard campaign JSONL files plus `dist.json` (requeued seeds and
//! per-slot worker RNG states), so [`Coordinator::resume`] can continue
//! the whole fleet, and `dx_campaign::Campaign::resume` can continue the
//! same checkpoint in-process.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dx_campaign::checkpoint::{self, write_atomic};
use dx_campaign::codec::{
    field_usize, parse_doc, rng_state_from_json, rng_state_json, u64_from_json, u64_json,
};
use dx_campaign::json::{build, Json};
use dx_campaign::{CampaignReport, Corpus, EnergyModel, EpochStats, FoundDiff, ModelSuite};
use dx_coverage::CoverageSignal;
use dx_nn::util::gather_rows;
use dx_tensor::{rng, Tensor};

use crate::proto::{coverage_news, Fingerprint, Job, JobResult, Msg, PROTOCOL_VERSION};
use crate::suite_fingerprint;
use crate::wire::{write_frame, FrameReader};

/// How often connection handlers and the accept loop wake up to check
/// deadlines and flags.
const POLL: Duration = Duration::from_millis(100);

/// Idle polls (no traffic from a drained, lease-less worker) before its
/// connection is closed server-side.
const DRAIN_GRACE_POLLS: u32 = 20;

/// Coordinator scheduling, budget and persistence knobs.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Absorbed seed steps per statistics round (the dist analogue of the
    /// in-process engine's epoch); each full round appends an
    /// [`EpochStats`] line and checkpoints.
    pub batch_per_round: usize,
    /// Total seed-step budget (across resumes); `None` is unbounded.
    pub max_steps: Option<usize>,
    /// Wall-clock budget for one [`Coordinator::serve`] call.
    pub duration: Option<Duration>,
    /// Drain once mean global coverage reaches this level.
    pub target_coverage: Option<f32>,
    /// Max jobs per lease.
    pub lease_size: usize,
    /// How long a lease may go without results or a heartbeat before its
    /// seeds are requeued.
    pub lease_timeout: Duration,
    /// Directory for checkpoints; `None` disables persistence.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Corpus size cap.
    pub max_corpus: usize,
    /// Campaign master seed; worker generator streams derive from it
    /// exactly as in the in-process pool.
    pub seed: u64,
    /// Corpus energy model.
    pub energy: EnergyModel,
    /// Print connection and lease events to stderr.
    pub verbose: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            batch_per_round: 16,
            max_steps: None,
            duration: None,
            target_coverage: None,
            lease_size: 4,
            lease_timeout: Duration::from_secs(30),
            checkpoint_dir: None,
            max_corpus: 4096,
            seed: 42,
            energy: EnergyModel::Classic,
            verbose: false,
        }
    }
}

/// Per-worker accounting, by slot.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Seed steps this worker completed.
    pub steps: usize,
    /// Difference-inducing inputs it found.
    pub diffs: usize,
    /// Neurons it was first to cover in the global union.
    pub contributed_neurons: usize,
}

/// What a finished dist campaign reports.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// Per-round statistics in the in-process report shape, so existing
    /// rendering and tooling apply unchanged.
    pub report: CampaignReport,
    /// Final per-model global coverage.
    pub coverage: Vec<f32>,
    /// Total seed steps absorbed (across resumes).
    pub steps_done: usize,
    /// Per-slot worker statistics.
    pub per_worker: Vec<(u64, WorkerStats)>,
    /// Difference-inducing inputs found (this serve call and resumed-from).
    pub diffs: usize,
}

impl DistReport {
    /// Renders the report plus a per-worker contribution table.
    pub fn render(&self) -> String {
        let mut out = self.report.render();
        out.push_str(&format!(
            "{:<8} {:>9} {:>9} {:>14}\n",
            "slot", "steps", "diffs", "new-neurons"
        ));
        for (slot, w) in &self.per_worker {
            out.push_str(&format!(
                "{:<8} {:>9} {:>9} {:>14}\n",
                slot, w.steps, w.diffs, w.contributed_neurons
            ));
        }
        out
    }
}

/// Asks a running [`Coordinator::serve`] to drain from another thread —
/// the programmatic stand-in for SIGTERM.
#[derive(Clone)]
pub struct DrainHandle(Arc<AtomicBool>);

impl DrainHandle {
    /// Requests a graceful drain.
    pub fn drain(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

struct Lease {
    slot: u64,
    seed_ids: Vec<usize>,
    deadline: Instant,
}

#[derive(Default)]
struct RoundAccum {
    seeds_run: usize,
    diffs_found: usize,
    iterations: usize,
    newly_covered: usize,
}

struct State {
    corpus: Corpus,
    global: Vec<CoverageSignal>,
    diffs: Vec<FoundDiff>,
    epochs: Vec<EpochStats>,
    round: RoundAccum,
    round_started: Instant,
    steps_done: usize,
    leases: HashMap<u64, Lease>,
    /// Requeued seed ids (expired/abandoned leases), served before fresh
    /// scheduling.
    pending: VecDeque<usize>,
    next_lease: u64,
    next_slot: u64,
    worker_rng: BTreeMap<u64, [u64; 4]>,
    per_worker: BTreeMap<u64, WorkerStats>,
    sched_rng: rng::Rng,
    connected: usize,
    /// Monotonic checkpoint snapshot counter; the writer discards stale
    /// snapshots that lost the race to a newer one.
    ckpt_seq: u64,
}

/// The coordinator; see the module docs for the protocol and lifecycle.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    fingerprint: Fingerprint,
    /// Empty signals, cloned as each connection's model of what its
    /// worker knows about global coverage.
    template: Vec<CoverageSignal>,
    state: Mutex<State>,
    drain: Arc<AtomicBool>,
    force_close: AtomicBool,
    /// Serializes checkpoint disk writes and remembers the newest snapshot
    /// written (None until the first write this process, which therefore
    /// rewrites instead of appending).
    ckpt_io: Mutex<Option<u64>>,
}

/// A full-state checkpoint snapshot, taken under the state lock (cheap
/// clones) and serialized + fsynced *outside* it, so a round flush never
/// stalls the other worker connections behind the coordinator mutex.
struct CheckpointJob {
    seq: u64,
    corpus: Corpus,
    report: CampaignReport,
    diffs: Vec<FoundDiff>,
    masks: Vec<Vec<bool>>,
    signal: checkpoint::SignalCheckpoint,
    meta: checkpoint::Meta,
    dist_doc: String,
}

enum Reply {
    Send(Msg),
    SendThenClose(Msg),
    Close,
}

impl Coordinator {
    /// Creates a coordinator over initial seeds (rows of `seeds`). The
    /// suite is used for coverage-tracker shapes and the admission
    /// fingerprint; the coordinator itself never runs the models.
    ///
    /// # Panics
    ///
    /// Panics on an empty seed tensor or a config with zero
    /// `batch_per_round`/`lease_size`.
    pub fn new(suite: &ModelSuite, label: &str, seeds: &Tensor, cfg: CoordinatorConfig) -> Self {
        assert!(seeds.shape()[0] > 0, "dist campaign needs at least one seed");
        let inputs = (0..seeds.shape()[0]).map(|i| gather_rows(seeds, &[i])).collect();
        let corpus = Corpus::new(inputs, cfg.max_corpus).with_energy_model(cfg.energy);
        Self::with_state(
            suite,
            label,
            cfg,
            corpus,
            Vec::new(),
            Vec::new(),
            None,
            0,
            VecDeque::new(),
            BTreeMap::new(),
            0,
        )
    }

    /// Resumes a coordinator from the checkpoint in `cfg.checkpoint_dir`:
    /// corpus, coverage union, stats, found diffs, requeued seeds and
    /// per-slot worker RNG states all continue.
    ///
    /// # Errors
    ///
    /// Missing directory or malformed checkpoint files.
    pub fn resume(suite: &ModelSuite, label: &str, cfg: CoordinatorConfig) -> io::Result<Self> {
        let dir = cfg.checkpoint_dir.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "resume needs a checkpoint dir")
        })?;
        Self::resume_from(suite, label, &dir, cfg)
    }

    /// Resumes from the checkpoint in `dir`, while future checkpoints go
    /// to `cfg.checkpoint_dir` — which may differ, forking the campaign
    /// (mirroring `dx_campaign::Campaign::resume_from`).
    ///
    /// # Errors
    ///
    /// Missing directory or malformed checkpoint files.
    pub fn resume_from(
        suite: &ModelSuite,
        label: &str,
        dir: &Path,
        cfg: CoordinatorConfig,
    ) -> io::Result<Self> {
        let state = checkpoint::load(dir)?;
        if state.signal.metric != suite.signal.metric {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint metric `{}` does not match the configured `{}`",
                    state.signal.metric, suite.signal.metric
                ),
            ));
        }
        // Checkpointed multisection profiles are authoritative, exactly as
        // in `dx_campaign::Campaign::resume_from`.
        let suite = &state.signal.restore_profiles(suite.clone())?;
        let dist = DistState::load(dir)?;
        let corpus =
            Corpus::from_entries(state.corpus, cfg.max_corpus).with_energy_model(cfg.energy);
        let mut cfg = cfg;
        cfg.seed = state.campaign_seed;
        let steps_done = dist
            .as_ref()
            .map(|d| d.steps_done)
            .unwrap_or_else(|| state.epochs.iter().map(|e| e.seeds_run).sum());
        let pending: VecDeque<usize> = dist
            .as_ref()
            .map(|d| d.pending.iter().copied().filter(|&id| corpus.get(id).is_some()).collect())
            .unwrap_or_default();
        let worker_rng = dist.as_ref().map(|d| d.worker_rng.clone()).unwrap_or_default();
        let next_lease = dist.as_ref().map(|d| d.next_lease).unwrap_or(0);
        Ok(Self::with_state(
            suite,
            label,
            cfg,
            corpus,
            state.diffs,
            state.epochs,
            state.coverage,
            steps_done,
            pending,
            worker_rng,
            next_lease,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn with_state(
        suite: &ModelSuite,
        label: &str,
        cfg: CoordinatorConfig,
        corpus: Corpus,
        diffs: Vec<FoundDiff>,
        epochs: Vec<EpochStats>,
        coverage: Option<Vec<Vec<bool>>>,
        steps_done: usize,
        pending: VecDeque<usize>,
        worker_rng: BTreeMap<u64, [u64; 4]>,
        next_lease: u64,
    ) -> Self {
        assert!(cfg.batch_per_round >= 1, "batch_per_round must be at least 1");
        assert!(cfg.lease_size >= 1, "lease_size must be at least 1");
        let template: Vec<CoverageSignal> = suite.signal.build(&suite.models);
        let mut global = template.clone();
        let masks_fit = coverage.as_ref().is_some_and(|masks| {
            masks.len() == global.len()
                && masks.iter().zip(global.iter()).all(|(m, g)| m.len() == g.total())
        });
        if masks_fit {
            for (g, mask) in global.iter_mut().zip(coverage.as_ref().expect("checked")) {
                g.set_covered_mask(mask);
            }
        }
        let fingerprint = suite_fingerprint(suite, label);
        let sched_rng = rng::rng(rng::derive_seed(cfg.seed, 0xd157));
        Self {
            cfg,
            fingerprint,
            template,
            state: Mutex::new(State {
                corpus,
                global,
                diffs,
                epochs,
                round: RoundAccum::default(),
                round_started: Instant::now(),
                steps_done,
                leases: HashMap::new(),
                pending,
                next_lease,
                next_slot: 0,
                worker_rng,
                per_worker: BTreeMap::new(),
                sched_rng,
                connected: 0,
                ckpt_seq: 0,
            }),
            drain: Arc::new(AtomicBool::new(false)),
            force_close: AtomicBool::new(false),
            ckpt_io: Mutex::new(None),
        }
    }

    /// A handle that asks [`Coordinator::serve`] to drain, from any thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle(Arc::clone(&self.drain))
    }

    /// The admission fingerprint workers must present.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Seed steps absorbed so far (including resumed-from steps).
    pub fn steps_done(&self) -> usize {
        self.lock().steps_done
    }

    /// Mean global coverage across models.
    pub fn mean_coverage(&self) -> f32 {
        let st = self.lock();
        mean_coverage(&st.global)
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("coordinator state lock")
    }

    fn log(&self, msg: impl AsRef<str>) {
        if self.cfg.verbose {
            eprintln!("coordinator: {}", msg.as_ref());
        }
    }

    /// Serves the campaign on `listener` until it drains (budget, coverage
    /// target, corpus exhaustion, or [`DrainHandle`]), then waits for
    /// outstanding leases, writes the final checkpoint, and reports.
    ///
    /// # Errors
    ///
    /// Listener failures and checkpoint I/O errors. Individual connection
    /// errors only drop that worker.
    pub fn serve(&self, listener: TcpListener) -> io::Result<DistReport> {
        listener.set_nonblocking(true)?;
        let started = Instant::now();
        {
            self.lock().round_started = Instant::now();
        }
        let mut drained_at: Option<Instant> = None;
        std::thread::scope(|scope| -> io::Result<()> {
            loop {
                self.housekeep(started)?;
                if self.drain.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    let since = *drained_at.get_or_insert(now);
                    let st = self.lock();
                    let idle = st.leases.is_empty() && st.connected == 0;
                    drop(st);
                    if idle {
                        // Sweep the accept backlog before closing the
                        // listener: a worker whose connection is still
                        // queued gets a polite `drain` instead of a reset.
                        match listener.accept() {
                            Ok((stream, _)) => {
                                scope.spawn(move || self.handle(stream));
                                continue;
                            }
                            Err(e)
                                if e.kind() == io::ErrorKind::WouldBlock
                                    || e.kind() == io::ErrorKind::TimedOut =>
                            {
                                break
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    if now.duration_since(since) > self.cfg.lease_timeout + 10 * POLL {
                        // Workers that never came back: stop waiting.
                        self.force_close.store(true, Ordering::SeqCst);
                    }
                }
                match listener.accept() {
                    Ok((stream, peer)) => {
                        self.log(format!("connection from {peer}"));
                        scope.spawn(move || self.handle(stream));
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL)
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        self.finish()
    }

    /// Periodic bookkeeping: expire overdue leases, trip stop conditions.
    fn housekeep(&self, started: Instant) -> io::Result<()> {
        if let Some(budget) = self.cfg.duration {
            if started.elapsed() >= budget {
                self.drain.store(true, Ordering::SeqCst);
            }
        }
        let mut st = self.lock();
        let now = Instant::now();
        let expired: Vec<u64> =
            st.leases.iter().filter(|(_, l)| now >= l.deadline).map(|(&id, _)| id).collect();
        for id in expired {
            let lease = st.leases.remove(&id).expect("collected above");
            self.log(format!(
                "lease {id} (slot {}, {} seeds) expired; requeued",
                lease.slot,
                lease.seed_ids.len()
            ));
            st.pending.extend(lease.seed_ids);
        }
        self.check_targets(&mut st);
        Ok(())
    }

    fn check_targets(&self, st: &mut State) {
        if let Some(max) = self.cfg.max_steps {
            if st.steps_done >= max {
                self.drain.store(true, Ordering::SeqCst);
            }
        }
        if let Some(target) = self.cfg.target_coverage {
            if mean_coverage(&st.global) >= target {
                self.drain.store(true, Ordering::SeqCst);
            }
        }
        if st.corpus.all_exhausted() && st.leases.is_empty() {
            self.drain.store(true, Ordering::SeqCst);
        }
    }

    /// One worker connection, request/response until it closes.
    fn handle(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        let mut reader = FrameReader::new();
        let mut slot: Option<u64> = None;
        let mut view = self.template.clone();
        let mut idle_polls: u32 = 0;
        let result: io::Result<()> = (|| loop {
            match reader.poll(&mut stream) {
                Ok(None) => {
                    if self.force_close.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    if self.drain.load(Ordering::SeqCst) {
                        let has_lease = match slot {
                            Some(s) => self.lock().leases.values().any(|l| l.slot == s),
                            None => false,
                        };
                        if !has_lease {
                            idle_polls += 1;
                            if idle_polls > DRAIN_GRACE_POLLS {
                                // The worker went quiet after the drain;
                                // close from our side.
                                return Ok(());
                            }
                        }
                    }
                }
                Ok(Some(doc)) => {
                    idle_polls = 0;
                    let msg = Msg::from_json(&doc)?;
                    let (reply, ckpt) = self.reply_for(msg, &mut slot, &mut view);
                    // Reply first — the checkpoint write is this handler's
                    // own time, not the worker's.
                    let closing = match reply {
                        Reply::Send(m) => {
                            write_frame(&mut stream, &m.to_json())?;
                            false
                        }
                        Reply::SendThenClose(m) => {
                            write_frame(&mut stream, &m.to_json())?;
                            true
                        }
                        Reply::Close => true,
                    };
                    if let Some(job) = ckpt {
                        if let Err(e) = self.write_checkpoint(job) {
                            self.log(format!("checkpoint failed: {e}"));
                        }
                    }
                    if closing {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        })();
        if let Err(e) = &result {
            if e.kind() != io::ErrorKind::UnexpectedEof {
                self.log(format!("connection error: {e}"));
            }
        }
        if let Some(s) = slot {
            self.disconnect(s);
        }
    }

    fn disconnect(&self, slot: u64) {
        let mut st = self.lock();
        st.connected = st.connected.saturating_sub(1);
        // A dead worker's leases go straight back to the queue.
        let orphaned: Vec<u64> =
            st.leases.iter().filter(|(_, l)| l.slot == slot).map(|(&id, _)| id).collect();
        for id in orphaned {
            let lease = st.leases.remove(&id).expect("collected above");
            st.pending.extend(lease.seed_ids);
        }
        drop(st);
        self.log(format!("worker {slot} disconnected"));
    }

    fn reply_for(
        &self,
        msg: Msg,
        slot: &mut Option<u64>,
        view: &mut [CoverageSignal],
    ) -> (Reply, Option<CheckpointJob>) {
        let mut ckpt = None;
        let reply = match msg {
            Msg::Hello { version, fingerprint } => {
                if version != PROTOCOL_VERSION {
                    let reason =
                        format!("protocol version {version} != coordinator {PROTOCOL_VERSION}");
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                if fingerprint != self.fingerprint {
                    let reason = format!(
                        "suite fingerprint {:?} != coordinator {:?}",
                        fingerprint, self.fingerprint
                    );
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                let mut st = self.lock();
                let s = st.next_slot;
                st.next_slot += 1;
                st.connected += 1;
                st.per_worker.entry(s).or_default();
                let rng_state = st.worker_rng.get(&s).copied();
                drop(st);
                *slot = Some(s);
                self.log(format!("worker {s} joined"));
                Reply::Send(Msg::Welcome { slot: s, campaign_seed: self.cfg.seed, rng_state })
            }
            Msg::LeaseRequest { slot: s, want } => {
                if Some(s) != *slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                if self.drain.load(Ordering::SeqCst) {
                    return (Reply::Send(Msg::Drain), None);
                }
                let mut st = self.lock();
                let want = want.clamp(1, self.cfg.lease_size);
                let ids = self.pick_seeds(&mut st, want);
                if ids.is_empty() {
                    if st.corpus.all_exhausted() && st.leases.is_empty() {
                        self.drain.store(true, Ordering::SeqCst);
                        return (Reply::Send(Msg::Drain), None);
                    }
                    // Everything schedulable is out on a lease right now.
                    return (Reply::Send(Msg::Wait { millis: 50 }), None);
                }
                let lease = st.next_lease;
                st.next_lease += 1;
                let jobs: Vec<Job> = ids
                    .iter()
                    .map(|&id| Job {
                        seed_id: id,
                        input: st.corpus.get(id).expect("picked from corpus").input.clone(),
                    })
                    .collect();
                st.leases.insert(
                    lease,
                    Lease {
                        slot: s,
                        seed_ids: ids,
                        deadline: Instant::now() + self.cfg.lease_timeout,
                    },
                );
                let cov = coverage_news(&st.global, view);
                Reply::Send(Msg::Lease { lease, jobs, cov })
            }
            Msg::Heartbeat { slot: s, lease } => {
                if Some(s) != *slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                let mut st = self.lock();
                if let Some(l) = st.leases.get_mut(&lease) {
                    if l.slot == s {
                        l.deadline = Instant::now() + self.cfg.lease_timeout;
                    }
                }
                let cov = coverage_news(&st.global, view);
                Reply::Send(Msg::Ack { cov })
            }
            Msg::Results { slot: s, lease, items, cov, rng_state } => {
                if Some(s) != *slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                let mut st = self.lock();
                // Validate delta indices before touching the union.
                for (m, idx) in cov.iter().enumerate() {
                    let total = st.global.get(m).map_or(0, CoverageSignal::total);
                    if m >= st.global.len() || idx.iter().any(|&i| i >= total) {
                        let reason = "coverage delta out of range".to_string();
                        return (Reply::SendThenClose(Msg::Reject { reason }), None);
                    }
                }
                let mut contributed = 0;
                for (g, idx) in st.global.iter_mut().zip(&cov) {
                    contributed += g.apply_covered_indices(idx);
                }
                // The worker evidently knows this coverage already — fold
                // it into the connection view too, or the next cov_news
                // would echo the worker's own delta straight back at it.
                for (v, idx) in view.iter_mut().zip(&cov) {
                    v.apply_covered_indices(idx);
                }
                st.worker_rng.insert(s, rng_state);
                {
                    let w = st.per_worker.entry(s).or_default();
                    w.contributed_neurons += contributed;
                }
                st.round.newly_covered += contributed;
                match st.leases.remove(&lease) {
                    Some(l) if l.slot == s => {
                        // Only absorb what was actually leased.
                        let leased: Vec<&JobResult> =
                            items.iter().filter(|i| l.seed_ids.contains(&i.seed_id)).collect();
                        ckpt = self.absorb_items(&mut st, s, &leased);
                    }
                    Some(l) => {
                        // Lease id collision with another slot: put it back.
                        st.leases.insert(lease, l);
                    }
                    None => {
                        // The lease expired — e.g. a single seed step
                        // outlasted the timeout. Its seeds were requeued;
                        // any still waiting in the queue are salvaged
                        // (counted instead of redone), so one slow step
                        // cannot livelock a budgeted campaign. Seeds
                        // already re-leased to someone else are dropped.
                        let salvage: Vec<&JobResult> =
                            items.iter().filter(|i| st.pending.contains(&i.seed_id)).collect();
                        for item in &salvage {
                            st.pending.retain(|&id| id != item.seed_id);
                        }
                        let dropped = items.len() - salvage.len();
                        ckpt = self.absorb_items(&mut st, s, &salvage);
                        self.log(format!(
                            "results for expired lease {lease} from worker {s}: \
                             {} runs salvaged, {dropped} dropped",
                            salvage.len()
                        ));
                    }
                }
                let cov = coverage_news(&st.global, view);
                if self.drain.load(Ordering::SeqCst) {
                    Reply::Send(Msg::Drain)
                } else {
                    Reply::Send(Msg::Ack { cov })
                }
            }
            Msg::Bye => Reply::Close,
            // Worker-bound messages arriving at the coordinator.
            Msg::Welcome { .. }
            | Msg::Lease { .. }
            | Msg::Wait { .. }
            | Msg::Ack { .. }
            | Msg::Drain
            | Msg::Reject { .. } => {
                Reply::SendThenClose(Msg::Reject { reason: "unexpected message".into() })
            }
        };
        (reply, ckpt)
    }

    /// Folds completed job results from `slot` into the campaign: corpus
    /// energy, found diffs, round statistics, budget/target checks, and a
    /// round flush when due. Callers have already filtered `items` down
    /// to seeds this worker legitimately holds. Returns a checkpoint
    /// snapshot to write (outside the state lock) when a round closed.
    fn absorb_items(&self, st: &mut State, s: u64, items: &[&JobResult]) -> Option<CheckpointJob> {
        // Per-component saturation, so the rarity energy model credits a
        // find against its own component's union, not the pooled mean.
        let global_coverage = dx_coverage::mean_component_coverage(&st.global);
        let epoch = st.epochs.len();
        for item in items {
            st.steps_done += 1;
            st.round.seeds_run += 1;
            st.round.iterations += item.run.iterations;
            st.per_worker.entry(s).or_default().steps += 1;
            if item.run.found_difference() {
                let test = item.run.test.as_ref().expect("found_difference has a test");
                st.round.diffs_found += 1;
                st.per_worker.entry(s).or_default().diffs += 1;
                st.diffs.push(FoundDiff {
                    seed_id: item.seed_id,
                    epoch,
                    input: test.input.clone(),
                    predictions: test.predictions.clone(),
                    iterations: test.iterations,
                    target_model: test.target_model,
                });
            }
            st.corpus.absorb(item.seed_id, &item.run, &global_coverage);
        }
        let ckpt = if st.round.seeds_run >= self.cfg.batch_per_round {
            self.flush_round(st)
        } else {
            None
        };
        self.check_targets(st);
        ckpt
    }

    /// Picks up to `want` seed ids: requeued seeds first, then an
    /// energy-weighted draw excluding everything leased or queued.
    fn pick_seeds(&self, st: &mut State, want: usize) -> Vec<usize> {
        let mut ids = Vec::with_capacity(want);
        while ids.len() < want {
            let Some(id) = st.pending.pop_front() else { break };
            let alive = st.corpus.get(id).is_some_and(|e| !e.exhausted);
            if alive && !ids.contains(&id) {
                ids.push(id);
            }
        }
        if ids.len() < want {
            let mut excluded: Vec<usize> =
                st.leases.values().flat_map(|l| l.seed_ids.iter().copied()).collect();
            excluded.extend(st.pending.iter().copied());
            excluded.extend(ids.iter().copied());
            let n = want - ids.len();
            let State { corpus, sched_rng, .. } = st;
            ids.extend(corpus.schedule_excluding(n, sched_rng, &excluded));
        }
        ids
    }

    /// Closes the current statistics round and snapshots a checkpoint.
    fn flush_round(&self, st: &mut State) -> Option<CheckpointJob> {
        let round = std::mem::take(&mut st.round);
        st.epochs.push(EpochStats {
            epoch: st.epochs.len(),
            seeds_run: round.seeds_run,
            diffs_found: round.diffs_found,
            iterations: round.iterations,
            newly_covered: round.newly_covered,
            mean_coverage: mean_coverage(&st.global),
            component_coverage: dx_coverage::mean_component_coverage(&st.global),
            corpus_len: st.corpus.len(),
            elapsed: st.round_started.elapsed(),
        });
        st.round_started = Instant::now();
        self.snapshot_checkpoint(st)
    }

    /// Clones the checkpointable state under the lock; serialization and
    /// disk I/O happen later in [`Coordinator::write_checkpoint`] without
    /// the lock. `None` when persistence is disabled.
    fn snapshot_checkpoint(&self, st: &mut State) -> Option<CheckpointJob> {
        self.cfg.checkpoint_dir.as_ref()?;
        st.ckpt_seq += 1;
        let workers = st.per_worker.len().max(1);
        Some(CheckpointJob {
            seq: st.ckpt_seq,
            corpus: st.corpus.clone(),
            report: CampaignReport { epochs: st.epochs.clone(), workers },
            diffs: st.diffs.clone(),
            masks: st.global.iter().map(CoverageSignal::covered_mask).collect(),
            signal: checkpoint::SignalCheckpoint::of(&st.global),
            meta: checkpoint::Meta {
                epochs_done: st.epochs.len(),
                campaign_seed: self.cfg.seed,
                workers,
                // Dist worker streams are keyed by slot in dist.json, not
                // by the in-process worker index; an in-process resume of
                // this checkpoint re-derives streams from the master seed.
                worker_rng: Vec::new(),
            },
            dist_doc: DistState::doc(st).to_string() + "\n",
        })
    }

    /// Writes a snapshot to the checkpoint directory. Writes are
    /// serialized on their own mutex, and a snapshot that lost the race
    /// to a newer one is discarded — every snapshot carries the full
    /// state, so the newest write is always the most complete.
    fn write_checkpoint(&self, job: CheckpointJob) -> io::Result<()> {
        let Some(dir) = self.cfg.checkpoint_dir.clone() else { return Ok(()) };
        let mut last = self.ckpt_io.lock().expect("checkpoint io lock");
        if last.is_some_and(|l| l >= job.seq) {
            return Ok(());
        }
        // First write this process rewrites stats/diffs (the directory
        // may hold an unrelated earlier campaign); later writes append.
        let append = last.is_some();
        checkpoint::save(
            &dir,
            &job.corpus,
            &job.report,
            &job.diffs,
            &job.masks,
            &job.signal,
            &job.meta,
            append,
        )?;
        write_atomic(&dir.join("dist.json"), &job.dist_doc)?;
        *last = Some(job.seq);
        Ok(())
    }

    /// Flushes the partial round, requeues outstanding leases, writes the
    /// final checkpoint, and builds the report.
    fn finish(&self) -> io::Result<DistReport> {
        let (ckpt, report) = {
            let mut st = self.lock();
            let outstanding: Vec<u64> = st.leases.keys().copied().collect();
            for id in outstanding {
                let lease = st.leases.remove(&id).expect("keys collected above");
                st.pending.extend(lease.seed_ids);
            }
            let ckpt = if st.round.seeds_run > 0 {
                self.flush_round(&mut st)
            } else {
                self.snapshot_checkpoint(&mut st)
            };
            let report = DistReport {
                report: CampaignReport {
                    epochs: st.epochs.clone(),
                    workers: st.per_worker.len().max(1),
                },
                coverage: st.global.iter().map(CoverageSignal::coverage).collect(),
                steps_done: st.steps_done,
                per_worker: st.per_worker.iter().map(|(&s, w)| (s, w.clone())).collect(),
                diffs: st.diffs.len(),
            };
            (ckpt, report)
        };
        if let Some(job) = ckpt {
            self.write_checkpoint(job)?;
        }
        Ok(report)
    }
}

fn mean_coverage(global: &[CoverageSignal]) -> f32 {
    if global.is_empty() {
        return 0.0;
    }
    global.iter().map(CoverageSignal::coverage).sum::<f32>() / global.len() as f32
}

/// The dist-specific checkpoint extension (`dist.json`): seeds owed to the
/// queue (requeued plus outstanding at save time) and per-slot worker RNG
/// states.
struct DistState {
    steps_done: usize,
    next_lease: u64,
    pending: Vec<usize>,
    worker_rng: BTreeMap<u64, [u64; 4]>,
}

impl DistState {
    /// The `dist.json` document for the current state (leased seeds fold
    /// into `pending`, since a checkpoint outlives every lease).
    fn doc(st: &State) -> Json {
        let pending: Vec<usize> = st
            .pending
            .iter()
            .copied()
            .chain(st.leases.values().flat_map(|l| l.seed_ids.iter().copied()))
            .collect();
        let workers = Json::Arr(
            st.worker_rng
                .iter()
                .map(|(&slot, state)| {
                    build::obj(vec![("slot", u64_json(slot)), ("state", rng_state_json(state))])
                })
                .collect(),
        );
        build::obj(vec![
            ("version", build::int(1)),
            ("steps_done", build::int(st.steps_done)),
            ("next_lease", u64_json(st.next_lease)),
            ("pending", build::ints(&pending)),
            ("worker_rng", workers),
        ])
    }

    /// `Ok(None)` when the file is absent — a plain campaign checkpoint.
    fn load(dir: &Path) -> io::Result<Option<Self>> {
        let text = match std::fs::read_to_string(dir.join("dist.json")) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
            Ok(t) => t,
        };
        let doc = parse_doc(&text)?;
        let pending = doc
            .get("pending")
            .and_then(Json::as_arr)
            .map(|xs| xs.iter().filter_map(Json::as_usize).collect())
            .unwrap_or_default();
        let mut worker_rng = BTreeMap::new();
        if let Some(entries) = doc.get("worker_rng").and_then(Json::as_arr) {
            for e in entries {
                let slot = e.get("slot").and_then(u64_from_json).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "dist.json worker slot")
                })?;
                let state = rng_state_from_json(e.get("state").ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "dist.json worker state")
                })?)?;
                worker_rng.insert(slot, state);
            }
        }
        Ok(Some(Self {
            steps_done: field_usize(&doc, "steps_done")?,
            next_lease: doc.get("next_lease").and_then(u64_from_json).unwrap_or(0),
            pending,
            worker_rng,
        }))
    }
}
