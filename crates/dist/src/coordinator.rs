//! The campaign coordinator: owns the corpus and the global coverage
//! union, leases seeds to workers, and folds results back in.
//!
//! One logical campaign, many OS processes. The coordinator is the only
//! holder of mutable campaign state; workers are stateless between leases
//! (beyond their generator RNG, which they report back for checkpointing).
//! Scheduling is the same energy-proportional draw as the in-process
//! engine, with leased seeds excluded so no two workers fuzz the same
//! entry concurrently.
//!
//! **Liveness.** Every lease carries a deadline, extended by worker
//! heartbeats; an expired lease's seeds are requeued for the next worker,
//! and results arriving for an expired lease still contribute their
//! coverage but are otherwise dropped. A dead connection requeues its
//! leases immediately.
//!
//! **Trust.** The coordinator does not take workers at their word. With
//! an auth token configured, admission requires an HMAC challenge/response
//! ([`crate::auth`]) before any campaign state is revealed. With a
//! spot-check rate configured, a sample of every worker's claimed
//! difference-inducing inputs is re-executed through the coordinator's own
//! model copies; claims that do not reproduce are quarantined, the lease's
//! results discarded and its seeds requeued, and a worker whose
//! fabrication rate crosses the trust threshold is evicted. Lease sizes
//! can also adapt per worker (`lease_max`), growing for workers that turn
//! leases around quickly.
//!
//! **Drain.** A drain (budget reached, coverage target met, corpus
//! exhausted, or an external [`DrainHandle`]) answers every following
//! lease request with `drain`, waits for outstanding leases to land or
//! expire, flushes the partial round, and writes a final checkpoint —
//! the standard campaign JSONL files plus `dist.json` (requeued seeds and
//! per-slot worker RNG states), so [`Coordinator::resume`] can continue
//! the whole fleet, and `dx_campaign::Campaign::resume` can continue the
//! same checkpoint in-process.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dx_campaign::checkpoint::{self, write_atomic};
use dx_campaign::codec::{
    diff_from_json, diff_json, field_usize, parse_doc, rng_state_from_json, rng_state_json,
    u64_from_json, u64_json,
};
use dx_campaign::json::{build, Json};
use dx_campaign::{CampaignReport, Corpus, EnergyModel, EpochStats, FoundDiff, ModelSuite};
use dx_coverage::CoverageSignal;
use dx_nn::util::gather_rows;
use dx_telemetry::events::{emit, Level};
use dx_telemetry::phase::{Phase, TIME_BUCKETS};
use dx_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use dx_tensor::{rng, Tensor};

use crate::auth;
use crate::proto::{
    coverage_news, Fingerprint, Job, JobResult, Msg, TelemetrySnapshot, PROTOCOL_VERSION,
};
use crate::suite_fingerprint;
use crate::wire::{write_frame, FrameReader, MAX_FRAME};

/// How often connection handlers and the accept loop wake up to check
/// deadlines and flags.
const POLL: Duration = Duration::from_millis(100);

/// Idle polls (no traffic from a drained, lease-less worker) before its
/// connection is closed server-side.
const DRAIN_GRACE_POLLS: u32 = 20;

/// Frame cap for connections that have not completed admission: big
/// enough for any hello/auth frame, small enough that a stranger's
/// four-byte length prefix cannot demand a quarter-gigabyte allocation.
const HELLO_FRAME_CAP: usize = 1 << 16;

/// How long a connection may sit without completing admission before it
/// is closed — a garbage or silent client must not park a handler thread
/// (and a listener backlog slot) forever.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// Spot-checks a worker must accumulate before its fabrication rate can
/// evict it — one unlucky sample should not kill a fleet member.
const TRUST_MIN_CHECKS: usize = 2;

/// Quarantined diffs kept in memory/checkpoints for inspection; beyond
/// this only the counter grows (a fabricator must not balloon `dist.json`).
const QUARANTINE_KEEP: usize = 256;

/// Coordinator scheduling, budget and persistence knobs.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Absorbed seed steps per statistics round (the dist analogue of the
    /// in-process engine's epoch); each full round appends an
    /// [`EpochStats`] line and checkpoints.
    pub batch_per_round: usize,
    /// Total seed-step budget (across resumes); `None` is unbounded.
    pub max_steps: Option<usize>,
    /// Wall-clock budget for one [`Coordinator::serve`] call.
    pub duration: Option<Duration>,
    /// Drain once mean global coverage reaches this level.
    pub target_coverage: Option<f32>,
    /// Max jobs per lease.
    pub lease_size: usize,
    /// How long a lease may go without results or a heartbeat before its
    /// seeds are requeued.
    pub lease_timeout: Duration,
    /// Directory for checkpoints; `None` disables persistence.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Corpus size cap.
    pub max_corpus: usize,
    /// Campaign master seed; worker generator streams derive from it
    /// exactly as in the in-process pool.
    pub seed: u64,
    /// Corpus energy model.
    pub energy: EnergyModel,
    /// Registry receiving coordinator metrics (lease/trust counters,
    /// per-worker turnaround and heartbeat histograms, phase histograms
    /// merged from worker telemetry). Defaults to a private registry so
    /// parallel tests never share series; the CLI injects
    /// [`dx_telemetry::global`] so `--metrics-addr` serves them.
    pub registry: MetricsRegistry,
    /// Shared secret workers must prove at admission via the HMAC
    /// challenge/response ([`crate::auth`]); `None` disables
    /// authentication and admits any fingerprint-matching peer.
    pub auth_token: Option<String>,
    /// Fraction of reported difference-inducing inputs the coordinator
    /// re-executes through its own models (`0.0` disables spot-checking,
    /// `1.0` re-checks every claim). Non-reproducing claims are
    /// quarantined, the whole lease's results are dropped and its seeds
    /// requeued.
    pub spot_check_rate: f32,
    /// Fabrication-rate ceiling: once a worker has failed more than this
    /// fraction of its spot-checks (after a small minimum number of
    /// checks), it is evicted and its leases requeued.
    pub trust_threshold: f32,
    /// Adaptive lease ceiling: when above `lease_size`, per-worker lease
    /// sizes grow toward this bound for workers whose observed throughput
    /// finishes leases quickly (and shrink back toward 1 for slow ones),
    /// so fast workers stop round-tripping tiny leases. `0` (the default)
    /// keeps every lease at `lease_size`.
    pub lease_max: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            batch_per_round: 16,
            max_steps: None,
            duration: None,
            target_coverage: None,
            lease_size: 4,
            lease_timeout: Duration::from_secs(30),
            checkpoint_dir: None,
            max_corpus: 4096,
            seed: 42,
            energy: EnergyModel::Classic,
            registry: MetricsRegistry::new(),
            auth_token: None,
            spot_check_rate: 0.0,
            trust_threshold: 0.5,
            lease_max: 0,
        }
    }
}

/// Per-worker accounting, by slot.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Seed steps this worker completed.
    pub steps: usize,
    /// Difference-inducing inputs it found.
    pub diffs: usize,
    /// Neurons it was first to cover in the global union.
    pub contributed_neurons: usize,
    /// Claimed diffs re-executed by the coordinator.
    pub spot_checked: usize,
    /// Re-executions that failed to reproduce (fabrications).
    pub spot_failed: usize,
    /// Whether the worker was evicted for crossing the trust threshold.
    pub evicted: bool,
}

impl WorkerStats {
    /// The fraction of spot-checks this worker failed (0 when unchecked).
    pub fn fabrication_rate(&self) -> f32 {
        if self.spot_checked == 0 {
            0.0
        } else {
            self.spot_failed as f32 / self.spot_checked as f32
        }
    }
}

/// What a finished dist campaign reports.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// Per-round statistics in the in-process report shape, so existing
    /// rendering and tooling apply unchanged.
    pub report: CampaignReport,
    /// Final per-model global coverage.
    pub coverage: Vec<f32>,
    /// Total seed steps absorbed (across resumes).
    pub steps_done: usize,
    /// Per-slot worker statistics.
    pub per_worker: Vec<(u64, WorkerStats)>,
    /// Difference-inducing inputs found (this serve call and resumed-from).
    pub diffs: usize,
    /// Claimed diffs that failed a spot-check and were quarantined
    /// (cumulative, across resumes).
    pub quarantined: usize,
}

impl DistReport {
    /// Renders the report plus a per-worker contribution and trust table.
    pub fn render(&self) -> String {
        let mut out = self.report.render();
        out.push_str(&format!(
            "{:<8} {:>9} {:>9} {:>11} {:>9} {:>9}  {}\n",
            "slot", "steps", "diffs", "new-units", "spot-ok", "spot-bad", "status"
        ));
        for (slot, w) in &self.per_worker {
            out.push_str(&format!(
                "{:<8} {:>9} {:>9} {:>11} {:>9} {:>9}  {}\n",
                slot,
                w.steps,
                w.diffs,
                w.contributed_neurons,
                w.spot_checked - w.spot_failed,
                w.spot_failed,
                if w.evicted { "evicted" } else { "ok" },
            ));
        }
        if self.quarantined > 0 {
            out.push_str(&format!(
                "{} claimed diff(s) failed spot-checks and were quarantined\n",
                self.quarantined
            ));
        }
        out
    }
}

/// Asks a running [`Coordinator::serve`] to drain from another thread —
/// the programmatic stand-in for SIGTERM.
#[derive(Clone)]
pub struct DrainHandle(Arc<AtomicBool>);

impl DrainHandle {
    /// Requests a graceful drain.
    pub fn drain(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

struct Lease {
    slot: u64,
    seed_ids: Vec<usize>,
    deadline: Instant,
    /// When the lease was granted — the adaptive sizer measures worker
    /// throughput as (results arrival − issue) / jobs.
    issued: Instant,
    /// Results for this lease arrived and are being spot-checked outside
    /// the state lock. The lease stays on the books so its seeds remain
    /// invisible to the scheduler (no double-lease), the drain check
    /// still sees work in flight, and housekeeping does not expire it
    /// mid-verification; a duplicate results frame meanwhile is ignored.
    checking: bool,
}

#[derive(Default)]
struct RoundAccum {
    seeds_run: usize,
    diffs_found: usize,
    iterations: usize,
    newly_covered: usize,
}

/// Cached registry handles for the coordinator's unlabeled series, plus
/// constructors for the per-slot series minted on demand. The per-slot
/// spot-check counters and eviction gauges are the *source of truth* for
/// trust accounting: [`WorkerStats`] rows in reports and `dist.json` are
/// populated from them at snapshot time, never the other way around.
struct CoordMetrics {
    registry: MetricsRegistry,
    steps: Arc<Counter>,
    diffs: Arc<Counter>,
    leases: Arc<Counter>,
    lease_expired: Arc<Counter>,
    heartbeats: Arc<Counter>,
    requeue_depth: Arc<Gauge>,
    connected: Arc<Gauge>,
}

impl CoordMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        registry.set_help("dx_seeds_total", "Seed steps absorbed by the coordinator.");
        registry.set_help("dx_diffs_total", "Difference-inducing inputs absorbed.");
        registry.set_help("dx_leases_total", "Leases granted to workers.");
        registry.set_help("dx_lease_expired_total", "Leases that timed out and were requeued.");
        registry.set_help("dx_heartbeats_total", "Heartbeat frames handled.");
        registry.set_help("dx_requeue_depth", "Seeds waiting in the requeue.");
        registry.set_help("dx_workers_connected", "Currently admitted worker connections.");
        registry.set_help("dx_lease_turnaround_seconds", "Lease issue-to-results time, per slot.");
        registry.set_help("dx_spot_checks_total", "Spot-checked diff claims by slot and verdict.");
        registry.set_help("dx_worker_evicted", "1 once the slot was evicted for fabrication.");
        registry.set_help("dx_heartbeat_rtt_seconds", "Worker-observed heartbeat round-trip time.");
        registry
            .set_help("dx_phase_seconds", "Generator hot-path phase time from worker telemetry.");
        Self {
            registry: registry.clone(),
            steps: registry.counter("dx_seeds_total", &[]),
            diffs: registry.counter("dx_diffs_total", &[]),
            leases: registry.counter("dx_leases_total", &[]),
            lease_expired: registry.counter("dx_lease_expired_total", &[]),
            heartbeats: registry.counter("dx_heartbeats_total", &[]),
            requeue_depth: registry.gauge("dx_requeue_depth", &[]),
            connected: registry.gauge("dx_workers_connected", &[]),
        }
    }

    /// Lease turnaround histogram for a slot; leases run seconds, not
    /// microseconds, so the shared phase ladder is scaled up.
    fn turnaround(&self, slot: u64) -> Arc<Histogram> {
        let bounds: Vec<f64> = TIME_BUCKETS.iter().map(|b| b * 100.0).collect();
        let slot = slot.to_string();
        self.registry.histogram("dx_lease_turnaround_seconds", &[("slot", &slot)], &bounds)
    }

    fn spot(&self, slot: u64, verdict: &str) -> Arc<Counter> {
        let slot = slot.to_string();
        self.registry.counter("dx_spot_checks_total", &[("slot", &slot), ("verdict", verdict)])
    }

    /// `(checked, failed)` spot-check totals for a slot.
    fn spot_counts(&self, slot: u64) -> (usize, usize) {
        let ok = self.spot(slot, "ok").get() as usize;
        let bad = self.spot(slot, "bad").get() as usize;
        (ok + bad, bad)
    }

    fn evicted_gauge(&self, slot: u64) -> Arc<Gauge> {
        let slot = slot.to_string();
        self.registry.gauge("dx_worker_evicted", &[("slot", &slot)])
    }

    fn is_evicted(&self, slot: u64) -> bool {
        self.evicted_gauge(slot).get() > 0.0
    }

    /// Tops the registry's trust series up to a resumed checkpoint's
    /// totals. Written as a top-up (not a blind increment) so resuming
    /// into a registry that already holds this campaign's counts — the
    /// process-global one, across serve calls — never double-counts.
    fn seed_trust(&self, per_worker: &BTreeMap<u64, WorkerStats>) {
        for (&slot, w) in per_worker {
            let (checked, bad) = self.spot_counts(slot);
            let ok_want = w.spot_checked.saturating_sub(w.spot_failed);
            let ok_have = checked - bad;
            if ok_want > ok_have {
                self.spot(slot, "ok").inc_by((ok_want - ok_have) as u64);
            }
            if w.spot_failed > bad {
                self.spot(slot, "bad").inc_by((w.spot_failed - bad) as u64);
            }
            if w.evicted {
                self.evicted_gauge(slot).set(1.0);
            }
        }
    }
}

struct State {
    corpus: Corpus,
    global: Vec<CoverageSignal>,
    diffs: Vec<FoundDiff>,
    /// Claimed diffs that failed re-execution, kept for inspection (capped
    /// at [`QUARANTINE_KEEP`]; `quarantined_total` keeps counting).
    quarantined: Vec<FoundDiff>,
    quarantined_total: usize,
    epochs: Vec<EpochStats>,
    round: RoundAccum,
    round_started: Instant,
    steps_done: usize,
    // BTreeMap, not HashMap: lease ids iterate in issue order, so the
    // snapshot in dist.json and the housekeeping sweep are
    // deterministic across runs.
    leases: BTreeMap<u64, Lease>,
    /// Requeued seed ids (expired/abandoned leases), served before fresh
    /// scheduling.
    pending: VecDeque<usize>,
    next_lease: u64,
    next_slot: u64,
    /// Persistent worker identity per slot (protocol v6). Trust records
    /// are keyed by slot internally, but admission resolves an identity
    /// back to its historical slot first — so an evicted worker's
    /// reconnect lands on its burned slot and is rejected instead of
    /// minting a fresh record.
    identities: BTreeMap<u64, String>,
    /// Slots with a live admitted connection; a second connection
    /// claiming the same identity is rejected while the first lives.
    live_slots: std::collections::HashSet<u64>,
    worker_rng: BTreeMap<u64, [u64; 4]>,
    per_worker: BTreeMap<u64, WorkerStats>,
    /// Per-slot adaptive lease size (absent = `cfg.lease_size`).
    lease_quota: BTreeMap<u64, usize>,
    sched_rng: rng::Rng,
    /// Drives spot-check sampling, independently of scheduling so
    /// enabling verification never changes which seeds get fuzzed.
    spot_rng: rng::Rng,
    connected: usize,
    /// Monotonic checkpoint snapshot counter; the writer discards stale
    /// snapshots that lost the race to a newer one.
    ckpt_seq: u64,
}

/// The coordinator; see the module docs for the protocol and lifecycle.
pub struct Coordinator {
    cfg: CoordinatorConfig,
    fingerprint: Fingerprint,
    /// The coordinator's own copy of the models under test, used to
    /// re-execute spot-checked claims. Never mutated.
    suite: ModelSuite,
    /// The shape every result tensor must have (`[1, sample dims...]`);
    /// anything else from a worker is a protocol violation, not a panic.
    sample_shape: Vec<usize>,
    /// Empty signals, cloned as each connection's model of what its
    /// worker knows about global coverage.
    template: Vec<CoverageSignal>,
    metrics: CoordMetrics,
    state: Mutex<State>,
    drain: Arc<AtomicBool>,
    force_close: AtomicBool,
    /// Serializes checkpoint disk writes and remembers the newest snapshot
    /// written (None until the first write this process, which therefore
    /// rewrites instead of appending).
    ckpt_io: Mutex<Option<u64>>,
}

/// Per-connection protocol state, owned by the handler thread.
struct Conn {
    /// Assigned slot, once admitted.
    slot: Option<u64>,
    /// What this worker is known to know about global coverage.
    view: Vec<CoverageSignal>,
    /// Fingerprint parked at `hello` until the auth proof arrives.
    pending_fp: Option<Fingerprint>,
    /// The identity announced at `hello`; the auth proof must be bound
    /// to it before admission trusts it.
    worker_id: Option<String>,
    /// The outstanding challenge nonce (auth-enabled coordinators only).
    nonce: Option<String>,
}

/// State restored from (or initialized for) a campaign, bundled so the
/// constructor does not take a dozen positional arguments.
struct Restored {
    corpus: Corpus,
    diffs: Vec<FoundDiff>,
    quarantined: Vec<FoundDiff>,
    quarantined_total: usize,
    epochs: Vec<EpochStats>,
    coverage: Option<Vec<Vec<bool>>>,
    steps_done: usize,
    pending: VecDeque<usize>,
    worker_rng: BTreeMap<u64, [u64; 4]>,
    per_worker: BTreeMap<u64, WorkerStats>,
    identities: BTreeMap<u64, String>,
    next_lease: u64,
}

impl Restored {
    fn fresh(corpus: Corpus) -> Self {
        Self {
            corpus,
            diffs: Vec::new(),
            quarantined: Vec::new(),
            quarantined_total: 0,
            epochs: Vec::new(),
            coverage: None,
            steps_done: 0,
            pending: VecDeque::new(),
            worker_rng: BTreeMap::new(),
            per_worker: BTreeMap::new(),
            identities: BTreeMap::new(),
            next_lease: 0,
        }
    }
}

/// A full-state checkpoint snapshot, taken under the state lock (cheap
/// clones) and serialized + fsynced *outside* it, so a round flush never
/// stalls the other worker connections behind the coordinator mutex.
struct CheckpointJob {
    seq: u64,
    corpus: Corpus,
    report: CampaignReport,
    diffs: Vec<FoundDiff>,
    masks: Vec<Vec<bool>>,
    signal: checkpoint::SignalCheckpoint,
    meta: checkpoint::Meta,
    dist: DistState,
}

enum Reply {
    Send(Msg),
    SendThenClose(Msg),
    Close,
}

/// The payload of a `results` frame, bundled for
/// [`Coordinator::handle_results`].
struct ResultsFrame {
    lease: u64,
    items: Vec<JobResult>,
    cov: crate::proto::CovDelta,
    rng_state: [u64; 4],
    telemetry: Option<TelemetrySnapshot>,
}

impl Coordinator {
    /// Creates a coordinator over initial seeds (rows of `seeds`). The
    /// suite is used for coverage-tracker shapes and the admission
    /// fingerprint; the coordinator itself never runs the models.
    ///
    /// # Panics
    ///
    /// Panics on an empty seed tensor or a config with zero
    /// `batch_per_round`/`lease_size`.
    pub fn new(suite: &ModelSuite, label: &str, seeds: &Tensor, cfg: CoordinatorConfig) -> Self {
        let n = seeds.shape().first().copied().unwrap_or(0);
        assert!(n > 0, "dist campaign needs at least one seed");
        let inputs = (0..n).map(|i| gather_rows(seeds, &[i])).collect();
        let corpus = Corpus::new(inputs, cfg.max_corpus).with_energy_model(cfg.energy);
        Self::with_state(suite, label, cfg, Restored::fresh(corpus))
    }

    /// Resumes a coordinator from the checkpoint in `cfg.checkpoint_dir`:
    /// corpus, coverage union, stats, found diffs, requeued seeds and
    /// per-slot worker RNG states all continue.
    ///
    /// # Errors
    ///
    /// Missing directory or malformed checkpoint files.
    pub fn resume(suite: &ModelSuite, label: &str, cfg: CoordinatorConfig) -> io::Result<Self> {
        let dir = cfg.checkpoint_dir.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "resume needs a checkpoint dir")
        })?;
        Self::resume_from(suite, label, &dir, cfg)
    }

    /// Resumes from the checkpoint in `dir`, while future checkpoints go
    /// to `cfg.checkpoint_dir` — which may differ, forking the campaign
    /// (mirroring `dx_campaign::Campaign::resume_from`).
    ///
    /// # Errors
    ///
    /// Missing directory or malformed checkpoint files.
    pub fn resume_from(
        suite: &ModelSuite,
        label: &str,
        dir: &Path,
        cfg: CoordinatorConfig,
    ) -> io::Result<Self> {
        let state = checkpoint::load(dir)?;
        if state.signal.metric != suite.signal.metric {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint metric `{}` does not match the configured `{}`",
                    state.signal.metric, suite.signal.metric
                ),
            ));
        }
        // Checkpointed multisection profiles are authoritative, exactly as
        // in `dx_campaign::Campaign::resume_from`.
        let suite = &state.signal.restore_profiles(suite.clone())?;
        let dist = DistState::load(dir)?;
        let corpus =
            Corpus::from_entries(state.corpus, cfg.max_corpus).with_energy_model(cfg.energy);
        let mut cfg = cfg;
        cfg.seed = state.campaign_seed;
        let steps_done = dist
            .as_ref()
            .map(|d| d.steps_done)
            .unwrap_or_else(|| state.epochs.iter().map(|e| e.seeds_run).sum());
        let pending: VecDeque<usize> = dist
            .as_ref()
            .map(|d| d.pending.iter().copied().filter(|&id| corpus.get(id).is_some()).collect())
            .unwrap_or_default();
        let restored = Restored {
            corpus,
            diffs: state.diffs,
            quarantined: dist.as_ref().map(|d| d.quarantined.clone()).unwrap_or_default(),
            quarantined_total: dist.as_ref().map(|d| d.quarantined_total).unwrap_or(0),
            epochs: state.epochs,
            coverage: state.coverage,
            steps_done,
            pending,
            worker_rng: dist.as_ref().map(|d| d.worker_rng.clone()).unwrap_or_default(),
            per_worker: dist.as_ref().map(|d| d.trust.clone()).unwrap_or_default(),
            identities: dist.as_ref().map(|d| d.identities.clone()).unwrap_or_default(),
            next_lease: dist.as_ref().map(|d| d.next_lease).unwrap_or(0),
        };
        Ok(Self::with_state(suite, label, cfg, restored))
    }

    fn with_state(
        suite: &ModelSuite,
        label: &str,
        cfg: CoordinatorConfig,
        restored: Restored,
    ) -> Self {
        assert!(cfg.batch_per_round >= 1, "batch_per_round must be at least 1");
        assert!(cfg.lease_size >= 1, "lease_size must be at least 1");
        assert!((0.0..=1.0).contains(&cfg.spot_check_rate), "spot_check_rate must be in [0, 1]");
        let template: Vec<CoverageSignal> = suite.signal.build(&suite.models);
        let mut global = template.clone();
        let masks_fit = restored.coverage.as_ref().is_some_and(|masks| {
            masks.len() == global.len()
                && masks.iter().zip(global.iter()).all(|(m, g)| m.len() == g.total())
        });
        if let Some(masks) = restored.coverage.as_ref().filter(|_| masks_fit) {
            for (g, mask) in global.iter_mut().zip(masks) {
                g.set_covered_mask(mask);
            }
        }
        let sample_shape = restored
            .corpus
            .entries()
            .first()
            .map(|e| e.input.shape().to_vec())
            // analysis: allow(panic): constructor contract — `new` asserts a
            // non-empty seed set and checkpoints never persist an empty corpus
            .expect("corpus is never empty");
        let fingerprint = suite_fingerprint(suite, label);
        let sched_rng = rng::rng(rng::derive_seed(cfg.seed, 0xd157));
        let spot_rng = rng::rng(rng::derive_seed(cfg.seed, 0x5b07));
        let metrics = CoordMetrics::new(&cfg.registry);
        // Fabrication history (and burned slots) must survive restarts.
        metrics.seed_trust(&restored.per_worker);
        metrics.requeue_depth.set(restored.pending.len() as f64);
        Self {
            cfg,
            fingerprint,
            suite: suite.clone(),
            sample_shape,
            template,
            metrics,
            state: Mutex::new(State {
                corpus: restored.corpus,
                global,
                diffs: restored.diffs,
                quarantined: restored.quarantined,
                quarantined_total: restored.quarantined_total,
                epochs: restored.epochs,
                round: RoundAccum::default(),
                round_started: Instant::now(),
                steps_done: restored.steps_done,
                leases: BTreeMap::new(),
                pending: restored.pending,
                next_lease: restored.next_lease,
                next_slot: 0,
                identities: restored.identities,
                live_slots: std::collections::HashSet::new(),
                worker_rng: restored.worker_rng,
                per_worker: restored.per_worker,
                lease_quota: BTreeMap::new(),
                sched_rng,
                spot_rng,
                connected: 0,
                ckpt_seq: 0,
            }),
            drain: Arc::new(AtomicBool::new(false)),
            force_close: AtomicBool::new(false),
            ckpt_io: Mutex::new(None),
        }
    }

    /// A handle that asks [`Coordinator::serve`] to drain, from any thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle(Arc::clone(&self.drain))
    }

    /// The admission fingerprint workers must present.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Seed steps absorbed so far (including resumed-from steps).
    pub fn steps_done(&self) -> usize {
        self.lock().steps_done
    }

    /// Leases currently out with workers.
    pub fn outstanding_leases(&self) -> usize {
        self.lock().leases.len()
    }

    /// Claimed diffs that failed spot-checks so far (cumulative).
    pub fn quarantined(&self) -> usize {
        self.lock().quarantined_total
    }

    /// Mean global coverage across models.
    pub fn mean_coverage(&self) -> f32 {
        let st = self.lock();
        mean_coverage_of(&st.global)
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking worker thread must not wedge the whole fleet: take
        // the state even if a holder panicked mid-update (the State
        // mutations are individually small and re-checked each round).
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Serves the campaign on `listener` until it drains (budget, coverage
    /// target, corpus exhaustion, or [`DrainHandle`]), then waits for
    /// outstanding leases, writes the final checkpoint, and reports.
    ///
    /// # Errors
    ///
    /// Listener failures and checkpoint I/O errors. Individual connection
    /// errors only drop that worker.
    pub fn serve(&self, listener: TcpListener) -> io::Result<DistReport> {
        listener.set_nonblocking(true)?;
        let started = Instant::now();
        {
            self.lock().round_started = Instant::now();
        }
        let mut drained_at: Option<Instant> = None;
        std::thread::scope(|scope| -> io::Result<()> {
            loop {
                self.housekeep(started)?;
                if self.drain.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    let since = *drained_at.get_or_insert(now);
                    let st = self.lock();
                    let idle = st.leases.is_empty() && st.connected == 0;
                    drop(st);
                    if idle {
                        // Sweep the accept backlog before closing the
                        // listener: a worker whose connection is still
                        // queued gets a polite `drain` instead of a reset.
                        match listener.accept() {
                            Ok((stream, _)) => {
                                scope.spawn(move || self.handle(stream));
                                continue;
                            }
                            Err(e)
                                if e.kind() == io::ErrorKind::WouldBlock
                                    || e.kind() == io::ErrorKind::TimedOut =>
                            {
                                break
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    if now.duration_since(since) > self.cfg.lease_timeout + 10 * POLL {
                        // Workers that never came back: stop waiting.
                        self.force_close.store(true, Ordering::SeqCst);
                    }
                }
                match listener.accept() {
                    Ok((stream, peer)) => {
                        emit(
                            Level::Debug,
                            "coordinator",
                            "connection",
                            &[("peer", peer.to_string().into())],
                        );
                        scope.spawn(move || self.handle(stream));
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL)
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        self.finish()
    }

    /// Periodic bookkeeping: expire overdue leases, trip stop conditions.
    fn housekeep(&self, started: Instant) -> io::Result<()> {
        if let Some(budget) = self.cfg.duration {
            if started.elapsed() >= budget {
                self.drain.store(true, Ordering::SeqCst);
            }
        }
        let mut st = self.lock();
        let now = Instant::now();
        let expired: Vec<u64> = st
            .leases
            .iter()
            .filter(|(_, l)| now >= l.deadline && !l.checking)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let Some(lease) = st.leases.remove(&id) else { continue };
            self.metrics.lease_expired.inc();
            emit(
                Level::Info,
                "coordinator",
                "lease_expired",
                &[
                    ("lease", id.into()),
                    ("slot", lease.slot.into()),
                    ("seeds", lease.seed_ids.len().into()),
                ],
            );
            st.pending.extend(lease.seed_ids);
        }
        self.metrics.requeue_depth.set(st.pending.len() as f64);
        self.check_targets(&mut st);
        Ok(())
    }

    fn check_targets(&self, st: &mut State) {
        if let Some(max) = self.cfg.max_steps {
            if st.steps_done >= max {
                self.drain.store(true, Ordering::SeqCst);
            }
        }
        if let Some(target) = self.cfg.target_coverage {
            if mean_coverage_of(&st.global) >= target {
                self.drain.store(true, Ordering::SeqCst);
            }
        }
        if st.corpus.all_exhausted() && st.leases.is_empty() {
            self.drain.store(true, Ordering::SeqCst);
        }
    }

    /// One worker connection, request/response until it closes.
    ///
    /// Hostile-input posture: unadmitted connections read through a small
    /// frame cap (no length-prefix allocation bombs) and are closed after
    /// [`HELLO_TIMEOUT`] if admission never completes; a malformed or
    /// oversized frame gets a best-effort `reject` and closes only *this*
    /// connection — the accept loop and every other worker keep going.
    fn handle(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        let mut reader = FrameReader::with_cap(HELLO_FRAME_CAP);
        let mut conn = Conn {
            slot: None,
            view: self.template.clone(),
            pending_fp: None,
            worker_id: None,
            nonce: None,
        };
        let opened = Instant::now();
        let mut idle_polls: u32 = 0;
        let result: io::Result<()> = (|| loop {
            match reader.poll(&mut stream) {
                Ok(None) => {
                    if self.force_close.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    if conn.slot.is_none() && opened.elapsed() >= HELLO_TIMEOUT {
                        // A silent or garbage peer must not park this
                        // handler thread forever.
                        let reject = Msg::Reject { reason: "admission timed out".into() };
                        let _ = write_frame(&mut stream, &reject.to_json());
                        return Ok(());
                    }
                    if self.drain.load(Ordering::SeqCst) {
                        let has_lease = match conn.slot {
                            Some(s) => self.lock().leases.values().any(|l| l.slot == s),
                            None => false,
                        };
                        if !has_lease {
                            idle_polls += 1;
                            if idle_polls > DRAIN_GRACE_POLLS {
                                // The worker went quiet after the drain;
                                // close from our side.
                                return Ok(());
                            }
                        }
                    }
                }
                Ok(Some(doc)) => {
                    idle_polls = 0;
                    let msg = match Msg::from_json(&doc) {
                        Ok(m) => m,
                        Err(e) => {
                            // Well-framed JSON that is not a protocol
                            // message: say why, then drop the connection.
                            let reject = Msg::Reject { reason: format!("malformed message: {e}") };
                            let _ = write_frame(&mut stream, &reject.to_json());
                            return Err(e);
                        }
                    };
                    let (reply, ckpt) = self.reply_for(msg, &mut conn);
                    if conn.slot.is_some() {
                        // Admitted: results frames carry tensors, so the
                        // connection earns the full frame allowance.
                        reader.set_cap(MAX_FRAME);
                    }
                    // Reply first — the checkpoint write is this handler's
                    // own time, not the worker's.
                    let closing = match reply {
                        Reply::Send(m) => {
                            write_frame(&mut stream, &m.to_json())?;
                            false
                        }
                        Reply::SendThenClose(m) => {
                            write_frame(&mut stream, &m.to_json())?;
                            true
                        }
                        Reply::Close => true,
                    };
                    if let Some(job) = ckpt {
                        if let Err(e) = self.write_checkpoint(job) {
                            emit(
                                Level::Error,
                                "coordinator",
                                "checkpoint_failed",
                                &[("error", e.to_string().into())],
                            );
                        }
                    }
                    if closing {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // Oversized length prefix or a non-JSON payload: a
                    // clean per-connection error, never a panic or a
                    // stalled accept loop.
                    let reject = Msg::Reject { reason: format!("bad frame: {e}") };
                    let _ = write_frame(&mut stream, &reject.to_json());
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        })();
        if let Err(e) = &result {
            if e.kind() != io::ErrorKind::UnexpectedEof {
                emit(
                    Level::Warn,
                    "coordinator",
                    "connection_error",
                    &[("error", e.to_string().into())],
                );
            }
        }
        if let Some(s) = conn.slot {
            self.disconnect(s);
        }
    }

    fn disconnect(&self, slot: u64) {
        let mut st = self.lock();
        st.live_slots.remove(&slot);
        st.connected = st.connected.saturating_sub(1);
        self.metrics.connected.set(st.connected as f64);
        // A dead worker's leases go straight back to the queue.
        let orphaned: Vec<u64> =
            st.leases.iter().filter(|(_, l)| l.slot == slot).map(|(&id, _)| id).collect();
        for id in orphaned {
            let Some(lease) = st.leases.remove(&id) else { continue };
            st.pending.extend(lease.seed_ids);
        }
        self.metrics.requeue_depth.set(st.pending.len() as f64);
        drop(st);
        emit(Level::Debug, "coordinator", "worker_disconnected", &[("slot", slot.into())]);
    }

    /// Verifies the fingerprint and assigns a slot — the step that first
    /// reveals campaign state, so an auth-enabled coordinator only gets
    /// here after a valid proof. Since protocol v6 slots are resolved by
    /// the worker's authenticated *identity*: a returning identity gets
    /// its historical slot back (trust records and RNG stream follow it),
    /// an evicted identity is refused outright — reconnecting under the
    /// same name cannot shed a fabrication record — and a fresh identity
    /// gets a fresh slot, skipping burned ones.
    fn admit(&self, fingerprint: Fingerprint, worker_id: &str, conn: &mut Conn) -> Reply {
        if fingerprint != self.fingerprint {
            let reason = format!(
                "suite fingerprint {:?} != coordinator {:?}",
                fingerprint, self.fingerprint
            );
            return Reply::SendThenClose(Msg::Reject { reason });
        }
        let mut st = self.lock();
        let known = st.identities.iter().find(|(_, id)| id.as_str() == worker_id).map(|(&s, _)| s);
        let s = match known {
            Some(s) if self.metrics.is_evicted(s) => {
                drop(st);
                emit(
                    Level::Warn,
                    "coordinator",
                    "evicted_identity_rejected",
                    &[("slot", s.into()), ("worker_id", worker_id.to_string().into())],
                );
                let reason = "worker identity is evicted".to_string();
                return Reply::SendThenClose(Msg::Reject { reason });
            }
            Some(s) if st.live_slots.contains(&s) => {
                drop(st);
                let reason = "worker identity already connected".to_string();
                return Reply::SendThenClose(Msg::Reject { reason });
            }
            Some(s) => s,
            None => {
                // Fresh identity: next free slot. A slot whose eviction
                // gauge is set is burned — a fresh worker must not inherit
                // a fabricator's history (and its instant re-eviction) —
                // and a live slot belongs to a returning identity that
                // reclaimed it out of connection order.
                while self.metrics.is_evicted(st.next_slot) || st.live_slots.contains(&st.next_slot)
                {
                    st.next_slot += 1;
                }
                let s = st.next_slot;
                st.next_slot += 1;
                s
            }
        };
        st.identities.insert(s, worker_id.to_string());
        st.live_slots.insert(s);
        st.connected += 1;
        self.metrics.connected.set(st.connected as f64);
        st.per_worker.entry(s).or_default();
        let rng_state = st.worker_rng.get(&s).copied();
        drop(st);
        conn.slot = Some(s);
        emit(
            Level::Info,
            "coordinator",
            "worker_joined",
            &[("slot", s.into()), ("worker_id", worker_id.to_string().into())],
        );
        Reply::Send(Msg::Welcome { slot: s, campaign_seed: self.cfg.seed, rng_state })
    }

    fn reply_for(&self, msg: Msg, conn: &mut Conn) -> (Reply, Option<CheckpointJob>) {
        let reply = match msg {
            Msg::Hello { version, fingerprint, worker_id } => {
                if conn.slot.is_some() {
                    let reason = "already admitted".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                if version != PROTOCOL_VERSION {
                    let reason =
                        format!("protocol version {version} != coordinator {PROTOCOL_VERSION}");
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                if worker_id.is_empty() {
                    let reason = "empty worker identity".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                if self.cfg.auth_token.is_some() {
                    // Authentication first: even the fingerprint verdict
                    // waits until the peer proves it holds the secret.
                    let nonce = auth::nonce();
                    conn.nonce = Some(nonce.clone());
                    conn.pending_fp = Some(fingerprint);
                    conn.worker_id = Some(worker_id);
                    Reply::Send(Msg::Challenge { nonce })
                } else {
                    self.admit(fingerprint, &worker_id, conn)
                }
            }
            Msg::AuthProof { proof } => {
                let (Some(token), Some(nonce), Some(fingerprint), Some(worker_id)) = (
                    &self.cfg.auth_token,
                    conn.nonce.take(),
                    conn.pending_fp.take(),
                    conn.worker_id.clone(),
                ) else {
                    let reason = "no challenge outstanding".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                };
                if !auth::verify(token, &nonce, &worker_id, &proof) {
                    emit(Level::Warn, "coordinator", "auth_failed", &[]);
                    let reason = "authentication failed".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                self.admit(fingerprint, &worker_id, conn)
            }
            Msg::LeaseRequest { slot: s, want } => {
                if Some(s) != conn.slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                if self.drain.load(Ordering::SeqCst) {
                    return (Reply::Send(Msg::Drain), None);
                }
                let mut st = self.lock();
                let grant = self.lease_grant(&mut st, s, want);
                let ids = self.pick_seeds(&mut st, grant);
                if ids.is_empty() {
                    if st.corpus.all_exhausted() && st.leases.is_empty() {
                        self.drain.store(true, Ordering::SeqCst);
                        return (Reply::Send(Msg::Drain), None);
                    }
                    // Everything schedulable is out on a lease right now.
                    return (Reply::Send(Msg::Wait { millis: 50 }), None);
                }
                let lease = st.next_lease;
                st.next_lease += 1;
                let jobs: Vec<Job> = ids
                    .iter()
                    .filter_map(|&id| {
                        Some(Job { seed_id: id, input: st.corpus.get(id)?.input.clone() })
                    })
                    .collect();
                let now = Instant::now();
                let granted = ids.len();
                st.leases.insert(
                    lease,
                    Lease {
                        slot: s,
                        seed_ids: ids,
                        deadline: now + self.cfg.lease_timeout,
                        issued: now,
                        checking: false,
                    },
                );
                self.metrics.leases.inc();
                self.metrics.requeue_depth.set(st.pending.len() as f64);
                emit(
                    Level::Debug,
                    "coordinator",
                    "lease_granted",
                    &[("lease", lease.into()), ("slot", s.into()), ("seeds", granted.into())],
                );
                let cov = coverage_news(&st.global, &mut conn.view);
                let rng_state = st.worker_rng.get(&s).copied();
                Reply::Send(Msg::Lease {
                    lease,
                    jobs,
                    cov,
                    campaign: 0,
                    campaign_seed: self.cfg.seed,
                    rng_state,
                })
            }
            Msg::Heartbeat { slot: s, lease } => {
                if Some(s) != conn.slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                self.metrics.heartbeats.inc();
                let mut st = self.lock();
                if let Some(l) = st.leases.get_mut(&lease) {
                    if l.slot == s {
                        l.deadline = Instant::now() + self.cfg.lease_timeout;
                    }
                }
                let cov = coverage_news(&st.global, &mut conn.view);
                Reply::Send(Msg::Ack { cov })
            }
            Msg::Results { slot: s, lease, campaign, items, cov, rng_state, telemetry } => {
                if Some(s) != conn.slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                if campaign != 0 {
                    let reason = format!("unknown campaign {campaign}");
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
                let frame = ResultsFrame { lease, items, cov, rng_state, telemetry };
                return self.handle_results(s, frame, conn);
            }
            Msg::Bye => Reply::Close,
            // Worker-bound messages arriving at the coordinator.
            Msg::Welcome { .. }
            | Msg::Lease { .. }
            | Msg::Wait { .. }
            | Msg::Ack { .. }
            | Msg::Drain
            | Msg::Challenge { .. }
            | Msg::Reject { .. } => {
                Reply::SendThenClose(Msg::Reject { reason: "unexpected message".into() })
            }
        };
        (reply, None)
    }

    /// Jobs to grant a worker: the fixed `lease_size`, or — with adaptive
    /// sizing on — the per-worker quota learned from observed throughput.
    /// Under adaptive sizing the worker's `want` is advisory (protocol
    /// v4): a fast worker is deliberately granted more than it asks for.
    fn lease_grant(&self, st: &mut State, s: u64, want: usize) -> usize {
        if self.cfg.lease_max > self.cfg.lease_size {
            st.lease_quota.get(&s).copied().unwrap_or(self.cfg.lease_size).max(1)
        } else {
            want.clamp(1, self.cfg.lease_size)
        }
    }

    /// Learns a worker's next lease size from how fast it turned the last
    /// one around: aim for leases that take about a quarter of the lease
    /// timeout, moving at most a factor of two per lease so one noisy
    /// measurement cannot whipsaw the quota. `turnaround` is measured at
    /// results arrival, so coordinator-side spot-check time is excluded.
    fn update_lease_quota(&self, st: &mut State, s: u64, turnaround: Duration, absorbed: usize) {
        if self.cfg.lease_max <= self.cfg.lease_size {
            return;
        }
        let quota = st.lease_quota.get(&s).copied().unwrap_or(self.cfg.lease_size);
        let per_step = (turnaround.as_secs_f64() / absorbed.max(1) as f64).max(1e-6);
        let target = (self.cfg.lease_timeout.as_secs_f64() / 4.0).max(1e-3);
        let ideal = (target / per_step) as usize;
        let next =
            ideal.clamp((quota / 2).max(1), quota.saturating_mul(2)).clamp(1, self.cfg.lease_max);
        if next != quota {
            emit(
                Level::Debug,
                "coordinator",
                "lease_quota",
                &[("slot", s.into()), ("from", quota.into()), ("to", next.into())],
            );
        }
        st.lease_quota.insert(s, next);
    }

    /// Handles a `results` frame in three phases: validate and plan under
    /// the state lock, re-execute sampled diff claims *outside* it (model
    /// forward passes must not stall every other connection), then apply
    /// or punish under the lock again.
    fn handle_results(
        &self,
        s: u64,
        frame: ResultsFrame,
        conn: &mut Conn,
    ) -> (Reply, Option<CheckpointJob>) {
        let ResultsFrame { lease, items, cov, rng_state, telemetry } = frame;
        enum Plan {
            /// A live lease owned by the sender. `turnaround` is issue →
            /// results arrival, measured before any spot-check work so
            /// the coordinator's own verification time is not billed to
            /// the worker's adaptive quota.
            Lease { seed_ids: Vec<usize>, turnaround: Duration },
            /// Lease id owned by another slot: ignore the items.
            Collision,
            /// The lease already expired; salvage what is still pending.
            Expired,
        }
        // Phase 1 (locked): validate the frame, claim the lease, sample
        // which claimed diffs to re-execute.
        let (plan, checks) = {
            let mut st = self.lock();
            // Validate delta indices before anything touches the union.
            for (m, idx) in cov.iter().enumerate() {
                let total = st.global.get(m).map_or(0, CoverageSignal::total);
                if m >= st.global.len() || idx.iter().any(|&i| i >= total) {
                    let reason = "coverage delta out of range".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), None);
                }
            }
            // Validate result tensor shapes: a fabricated tensor of the
            // wrong shape would otherwise panic a forward pass (here at a
            // spot-check, or later in whatever resumes the corpus).
            let shape_ok = items.iter().all(|i| {
                i.run.test.as_ref().is_none_or(|t| t.input.shape() == self.sample_shape)
                    && i.run
                        .corpus_candidate
                        .as_ref()
                        .is_none_or(|c| c.shape() == self.sample_shape)
            });
            if !shape_ok {
                let reason = "result tensor shape mismatch".to_string();
                return (Reply::SendThenClose(Msg::Reject { reason }), None);
            }
            // A lease id this coordinator never issued is a fabrication,
            // not an expiry — nothing about such a frame (coverage
            // included) is credible.
            if lease >= st.next_lease {
                let reason = "unknown lease id".to_string();
                return (Reply::SendThenClose(Msg::Reject { reason }), None);
            }
            // The lease stays in the map, marked `checking`, while its
            // claims are re-executed outside the lock: its seeds must
            // remain excluded from scheduling, the drain check must still
            // see work in flight, and a duplicate results frame for the
            // same lease must not absorb twice. Phase 3 removes it.
            let plan = match st.leases.get_mut(&lease) {
                Some(l) if l.slot == s && !l.checking => {
                    let now = Instant::now();
                    l.checking = true;
                    let turnaround = now.duration_since(l.issued);
                    l.deadline = now + self.cfg.lease_timeout;
                    Plan::Lease { seed_ids: l.seed_ids.clone(), turnaround }
                }
                Some(_) => Plan::Collision,
                None => Plan::Expired,
            };
            // Sample claimed diffs among items that could be absorbed.
            let mut checks = Vec::new();
            if self.cfg.spot_check_rate > 0.0 {
                use rand::Rng as _;
                for item in &items {
                    let absorbable = match &plan {
                        Plan::Lease { seed_ids, .. } => seed_ids.contains(&item.seed_id),
                        Plan::Expired => st.pending.contains(&item.seed_id),
                        Plan::Collision => false,
                    };
                    if !absorbable || !item.run.found_difference() {
                        continue;
                    }
                    if st.spot_rng.gen_range(0.0f32..1.0) < self.cfg.spot_check_rate {
                        if let Some(test) = item.run.test.as_ref() {
                            checks.push((item.seed_id, test.clone()));
                        }
                    }
                }
            }
            (plan, checks)
        };
        // Phase 2 (unlocked): re-execute the sampled claims through the
        // coordinator's own models.
        let failed: Vec<_> = checks
            .iter()
            .filter(|(_, t)| !self.suite.reproduces_difference(&t.input, &t.predictions))
            .collect();
        // Phase 3 (locked): punish or apply. The registry's per-slot
        // spot-check counters are the trust ledger; `per_worker` keeps
        // only throughput tallies (report rows re-read the registry).
        if !checks.is_empty() {
            self.metrics.spot(s, "ok").inc_by((checks.len() - failed.len()) as u64);
            self.metrics.spot(s, "bad").inc_by(failed.len() as u64);
        }
        let mut st = self.lock();
        if !failed.is_empty() {
            let epoch = st.epochs.len();
            for (seed_id, t) in &failed {
                st.quarantined_total += 1;
                if st.quarantined.len() < QUARANTINE_KEEP {
                    st.quarantined.push(FoundDiff {
                        seed_id: *seed_id,
                        epoch,
                        input: t.input.clone(),
                        predictions: t.predictions.clone(),
                        iterations: t.iterations,
                        target_model: t.target_model,
                    });
                }
            }
            // Nothing from this frame is trusted: no coverage union, no
            // corpus absorption, no RNG persistence. The lease's seeds go
            // back to the queue for an honest worker.
            if let Plan::Lease { seed_ids, .. } = plan {
                st.leases.remove(&lease);
                st.pending.extend(seed_ids);
                self.metrics.requeue_depth.set(st.pending.len() as f64);
            }
            let (checked, bad) = self.metrics.spot_counts(s);
            emit(
                Level::Warn,
                "coordinator",
                "spot_check_failed",
                &[
                    ("slot", s.into()),
                    ("lease", lease.into()),
                    ("failed", failed.len().into()),
                    ("sampled", checks.len().into()),
                ],
            );
            let rate = if checked == 0 { 0.0 } else { bad as f32 / checked as f32 };
            if checked >= TRUST_MIN_CHECKS && rate > self.cfg.trust_threshold {
                self.metrics.evicted_gauge(s).set(1.0);
                drop(st);
                emit(
                    Level::Warn,
                    "coordinator",
                    "worker_evicted",
                    &[("slot", s.into()), ("failed", bad.into()), ("checked", checked.into())],
                );
                let reason =
                    format!("evicted: {bad} of {checked} spot-checked diffs failed to reproduce");
                return (Reply::SendThenClose(Msg::Reject { reason }), None);
            }
            let cov = coverage_news(&st.global, &mut conn.view);
            let reply = if self.drain.load(Ordering::SeqCst) {
                Reply::Send(Msg::Drain)
            } else {
                Reply::Send(Msg::Ack { cov })
            };
            return (reply, None);
        }
        // All sampled claims reproduced: fold the frame in, advisory
        // telemetry included (an untrusted frame never gets this far).
        if let Some(t) = &telemetry {
            self.merge_worker_telemetry(s, t);
        }
        let mut contributed = 0;
        for (g, idx) in st.global.iter_mut().zip(&cov) {
            contributed += g.apply_covered_indices(idx);
        }
        // The worker evidently knows this coverage already — fold it into
        // the connection view too, or the next cov_news would echo the
        // worker's own delta straight back at it.
        for (v, idx) in conn.view.iter_mut().zip(&cov) {
            v.apply_covered_indices(idx);
        }
        st.worker_rng.insert(s, rng_state);
        {
            let w = st.per_worker.entry(s).or_default();
            w.contributed_neurons += contributed;
        }
        st.round.newly_covered += contributed;
        let mut ckpt = None;
        match plan {
            Plan::Lease { seed_ids, turnaround } => {
                st.leases.remove(&lease);
                self.metrics.turnaround(s).observe(turnaround.as_secs_f64());
                // Only absorb what was actually leased.
                let leased: Vec<&JobResult> =
                    items.iter().filter(|i| seed_ids.contains(&i.seed_id)).collect();
                self.update_lease_quota(&mut st, s, turnaround, leased.len());
                ckpt = self.absorb_items(&mut st, s, &leased);
            }
            Plan::Collision => {
                // Lease id owned by another slot: the items are not ours
                // to count (the lease stays with its owner).
            }
            Plan::Expired => {
                // The lease expired — e.g. a single seed step outlasted
                // the timeout. Its seeds were requeued; any still waiting
                // in the queue are salvaged (counted instead of redone),
                // so one slow step cannot livelock a budgeted campaign.
                // Seeds already re-leased to someone else are dropped.
                let salvage: Vec<&JobResult> =
                    items.iter().filter(|i| st.pending.contains(&i.seed_id)).collect();
                for item in &salvage {
                    st.pending.retain(|&id| id != item.seed_id);
                }
                let dropped = items.len() - salvage.len();
                self.metrics.requeue_depth.set(st.pending.len() as f64);
                let salvaged = salvage.len();
                ckpt = self.absorb_items(&mut st, s, &salvage);
                emit(
                    Level::Debug,
                    "coordinator",
                    "lease_salvaged",
                    &[
                        ("lease", lease.into()),
                        ("slot", s.into()),
                        ("salvaged", salvaged.into()),
                        ("dropped", dropped.into()),
                    ],
                );
            }
        }
        let cov = coverage_news(&st.global, &mut conn.view);
        let reply = if self.drain.load(Ordering::SeqCst) {
            Reply::Send(Msg::Drain)
        } else {
            Reply::Send(Msg::Ack { cov })
        };
        (reply, ckpt)
    }

    /// Folds a worker's advisory telemetry snapshot into the registry.
    /// Phase names are matched against the known set, so a hostile worker
    /// cannot mint unbounded label values; histograms with a foreign
    /// bucket layout are dropped by `merge_local` for the same reason.
    fn merge_worker_telemetry(&self, s: u64, t: &TelemetrySnapshot) {
        let reg = &self.cfg.registry;
        for (name, hist) in &t.phases {
            let Some(phase) = Phase::ALL.iter().find(|p| p.name() == name) else { continue };
            reg.histogram("dx_phase_seconds", &[("phase", phase.name())], &TIME_BUCKETS)
                .merge_local(hist);
        }
        if let Some(hb) = &t.heartbeat {
            let slot = s.to_string();
            reg.histogram("dx_heartbeat_rtt_seconds", &[("slot", &slot)], &TIME_BUCKETS)
                .merge_local(hb);
        }
    }

    /// Per-slot report rows with the trust columns read back from the
    /// registry — the counters are the source of truth; the stored structs
    /// only carry steps/diffs/contribution tallies.
    fn trust_rows(&self, st: &State) -> Vec<(u64, WorkerStats)> {
        st.per_worker
            .iter()
            .map(|(&slot, w)| {
                let (checked, bad) = self.metrics.spot_counts(slot);
                let row = WorkerStats {
                    spot_checked: checked,
                    spot_failed: bad,
                    evicted: self.metrics.is_evicted(slot),
                    ..w.clone()
                };
                (slot, row)
            })
            .collect()
    }

    /// Folds completed job results from `slot` into the campaign: corpus
    /// energy, found diffs, round statistics, budget/target checks, and a
    /// round flush when due. Callers have already filtered `items` down
    /// to seeds this worker legitimately holds. Returns a checkpoint
    /// snapshot to write (outside the state lock) when a round closed.
    fn absorb_items(&self, st: &mut State, s: u64, items: &[&JobResult]) -> Option<CheckpointJob> {
        // Per-component saturation, so the rarity energy model credits a
        // find against its own component's union, not the pooled mean.
        let global_coverage = dx_coverage::mean_component_coverage(&st.global);
        let epoch = st.epochs.len();
        for item in items {
            st.steps_done += 1;
            st.round.seeds_run += 1;
            st.round.iterations += item.run.iterations;
            st.per_worker.entry(s).or_default().steps += 1;
            let diff_test = if item.run.found_difference() { item.run.test.as_ref() } else { None };
            if let Some(test) = diff_test {
                st.round.diffs_found += 1;
                st.per_worker.entry(s).or_default().diffs += 1;
                st.diffs.push(FoundDiff {
                    seed_id: item.seed_id,
                    epoch,
                    input: test.input.clone(),
                    predictions: test.predictions.clone(),
                    iterations: test.iterations,
                    target_model: test.target_model,
                });
            }
            st.corpus.absorb(item.seed_id, &item.run, &global_coverage);
        }
        self.metrics.steps.inc_by(items.len() as u64);
        self.metrics.diffs.inc_by(items.iter().filter(|i| i.run.found_difference()).count() as u64);
        let ckpt = if st.round.seeds_run >= self.cfg.batch_per_round {
            self.flush_round(st)
        } else {
            None
        };
        self.check_targets(st);
        ckpt
    }

    /// Picks up to `want` seed ids: requeued seeds first, then an
    /// energy-weighted draw excluding everything leased or queued.
    fn pick_seeds(&self, st: &mut State, want: usize) -> Vec<usize> {
        let mut ids = Vec::with_capacity(want);
        while ids.len() < want {
            let Some(id) = st.pending.pop_front() else { break };
            let alive = st.corpus.get(id).is_some_and(|e| !e.exhausted);
            if alive && !ids.contains(&id) {
                ids.push(id);
            }
        }
        if ids.len() < want {
            let mut excluded: Vec<usize> =
                st.leases.values().flat_map(|l| l.seed_ids.iter().copied()).collect();
            excluded.extend(st.pending.iter().copied());
            excluded.extend(ids.iter().copied());
            let n = want - ids.len();
            let State { corpus, sched_rng, .. } = st;
            ids.extend(corpus.schedule_excluding(n, sched_rng, &excluded));
        }
        ids
    }

    /// Closes the current statistics round and snapshots a checkpoint.
    fn flush_round(&self, st: &mut State) -> Option<CheckpointJob> {
        let round = std::mem::take(&mut st.round);
        st.epochs.push(EpochStats {
            epoch: st.epochs.len(),
            seeds_run: round.seeds_run,
            diffs_found: round.diffs_found,
            iterations: round.iterations,
            newly_covered: round.newly_covered,
            mean_coverage: mean_coverage_of(&st.global),
            component_coverage: dx_coverage::mean_component_coverage(&st.global),
            corpus_len: st.corpus.len(),
            elapsed: st.round_started.elapsed(),
        });
        st.round_started = Instant::now();
        self.snapshot_checkpoint(st)
    }

    /// Clones the checkpointable state under the lock; serialization and
    /// disk I/O happen later in [`Coordinator::write_checkpoint`] without
    /// the lock. `None` when persistence is disabled.
    fn snapshot_checkpoint(&self, st: &mut State) -> Option<CheckpointJob> {
        self.cfg.checkpoint_dir.as_ref()?;
        st.ckpt_seq += 1;
        let workers = st.per_worker.len().max(1);
        Some(CheckpointJob {
            seq: st.ckpt_seq,
            corpus: st.corpus.clone(),
            report: CampaignReport { epochs: st.epochs.clone(), workers },
            diffs: st.diffs.clone(),
            masks: st.global.iter().map(CoverageSignal::covered_mask).collect(),
            signal: checkpoint::SignalCheckpoint::of(&st.global),
            meta: checkpoint::Meta {
                epochs_done: st.epochs.len(),
                campaign_seed: self.cfg.seed,
                workers,
                // Dist worker streams are keyed by slot in dist.json, not
                // by the in-process worker index; an in-process resume of
                // this checkpoint re-derives streams from the master seed.
                worker_rng: Vec::new(),
            },
            dist: DistState::snapshot(st, self.trust_rows(st).into_iter().collect()),
        })
    }

    /// Writes a snapshot to the checkpoint directory. Writes are
    /// serialized on their own mutex, and a snapshot that lost the race
    /// to a newer one is discarded — every snapshot carries the full
    /// state, so the newest write is always the most complete.
    fn write_checkpoint(&self, job: CheckpointJob) -> io::Result<()> {
        let Some(dir) = self.cfg.checkpoint_dir.clone() else { return Ok(()) };
        // Poison-tolerant for the same reason as `lock()`: checkpoint I/O
        // must keep working after an unrelated thread panic.
        let mut last = self.ckpt_io.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if last.is_some_and(|l| l >= job.seq) {
            return Ok(());
        }
        // First write this process rewrites stats/diffs (the directory
        // may hold an unrelated earlier campaign); later writes append.
        let append = last.is_some();
        checkpoint::save(
            &dir,
            &job.corpus,
            &job.report,
            &job.diffs,
            &job.masks,
            &job.signal,
            &job.meta,
            append,
        )?;
        write_atomic(&dir.join("dist.json"), &(job.dist.doc().to_string() + "\n"))?;
        *last = Some(job.seq);
        Ok(())
    }

    /// Flushes the partial round, requeues outstanding leases, writes the
    /// final checkpoint, and builds the report.
    fn finish(&self) -> io::Result<DistReport> {
        let (ckpt, report) = {
            let mut st = self.lock();
            let outstanding: Vec<u64> = st.leases.keys().copied().collect();
            for id in outstanding {
                let Some(lease) = st.leases.remove(&id) else { continue };
                st.pending.extend(lease.seed_ids);
            }
            self.metrics.requeue_depth.set(st.pending.len() as f64);
            let ckpt = if st.round.seeds_run > 0 {
                self.flush_round(&mut st)
            } else {
                self.snapshot_checkpoint(&mut st)
            };
            let report = DistReport {
                report: CampaignReport {
                    epochs: st.epochs.clone(),
                    workers: st.per_worker.len().max(1),
                },
                coverage: st.global.iter().map(CoverageSignal::coverage).collect(),
                steps_done: st.steps_done,
                per_worker: self.trust_rows(&st),
                diffs: st.diffs.len(),
                quarantined: st.quarantined_total,
            };
            (ckpt, report)
        };
        if let Some(job) = ckpt {
            self.write_checkpoint(job)?;
        }
        Ok(report)
    }
}

fn mean_coverage_of(global: &[CoverageSignal]) -> f32 {
    if global.is_empty() {
        return 0.0;
    }
    global.iter().map(CoverageSignal::coverage).sum::<f32>() / global.len() as f32
}

/// The dist-specific checkpoint extension (`dist.json`): seeds owed to the
/// queue (requeued plus outstanding at save time), per-slot worker RNG
/// states, since v2 per-slot trust accounting plus the quarantined diffs
/// that failed spot-checks, and since v3 the worker identity bound to each
/// slot — so eviction survives a restart keyed to the identity, not the
/// connection order.
struct DistState {
    steps_done: usize,
    next_lease: u64,
    pending: Vec<usize>,
    worker_rng: BTreeMap<u64, [u64; 4]>,
    trust: BTreeMap<u64, WorkerStats>,
    identities: BTreeMap<u64, String>,
    quarantined: Vec<FoundDiff>,
    quarantined_total: usize,
}

impl DistState {
    /// Snapshots the dist extension's state under the coordinator lock —
    /// cheap field clones only. Leased seeds fold into `pending`, since a
    /// checkpoint outlives every lease. The trust rows arrive prepared by
    /// the caller ([`Coordinator::trust_rows`]) because their spot-check
    /// columns live in the metrics registry, not in [`State`]. JSON
    /// rendering (the expensive part, with up to [`QUARANTINE_KEEP`]
    /// inlined tensors) happens in [`DistState::doc`], outside the lock.
    fn snapshot(st: &State, trust: BTreeMap<u64, WorkerStats>) -> Self {
        Self {
            steps_done: st.steps_done,
            next_lease: st.next_lease,
            pending: st
                .pending
                .iter()
                .copied()
                .chain(st.leases.values().flat_map(|l| l.seed_ids.iter().copied()))
                .collect(),
            worker_rng: st.worker_rng.clone(),
            trust,
            identities: st.identities.clone(),
            quarantined: st.quarantined.clone(),
            quarantined_total: st.quarantined_total,
        }
    }

    /// The `dist.json` document for a snapshot.
    fn doc(&self) -> Json {
        let workers = Json::Arr(
            self.worker_rng
                .iter()
                .map(|(&slot, state)| {
                    build::obj(vec![("slot", u64_json(slot)), ("state", rng_state_json(state))])
                })
                .collect(),
        );
        let trust = Json::Arr(
            self.trust
                .iter()
                .map(|(&slot, w)| {
                    build::obj(vec![
                        ("slot", u64_json(slot)),
                        ("checked", build::int(w.spot_checked)),
                        ("failed", build::int(w.spot_failed)),
                        ("evicted", Json::Bool(w.evicted)),
                    ])
                })
                .collect(),
        );
        let identities = Json::Arr(
            self.identities
                .iter()
                .map(|(&slot, id)| {
                    build::obj(vec![("slot", u64_json(slot)), ("worker_id", build::str(id))])
                })
                .collect(),
        );
        build::obj(vec![
            ("version", build::int(3)),
            ("steps_done", build::int(self.steps_done)),
            ("next_lease", u64_json(self.next_lease)),
            ("pending", build::ints(&self.pending)),
            ("worker_rng", workers),
            ("trust", trust),
            ("identities", identities),
            ("quarantined_total", build::int(self.quarantined_total)),
            ("quarantined", Json::Arr(self.quarantined.iter().map(diff_json).collect())),
        ])
    }

    /// `Ok(None)` when the file is absent — a plain campaign checkpoint.
    /// v1 files (no trust/quarantine fields) load with empty trust state.
    fn load(dir: &Path) -> io::Result<Option<Self>> {
        let text = match std::fs::read_to_string(dir.join("dist.json")) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
            Ok(t) => t,
        };
        let doc = parse_doc(&text)?;
        let pending = doc
            .get("pending")
            .and_then(Json::as_arr)
            .map(|xs| xs.iter().filter_map(Json::as_usize).collect())
            .unwrap_or_default();
        let mut worker_rng = BTreeMap::new();
        if let Some(entries) = doc.get("worker_rng").and_then(Json::as_arr) {
            for e in entries {
                let slot = e.get("slot").and_then(u64_from_json).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "dist.json worker slot")
                })?;
                let state = rng_state_from_json(e.get("state").ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "dist.json worker state")
                })?)?;
                worker_rng.insert(slot, state);
            }
        }
        let mut trust = BTreeMap::new();
        if let Some(entries) = doc.get("trust").and_then(Json::as_arr) {
            for e in entries {
                let slot = e.get("slot").and_then(u64_from_json).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "dist.json trust slot")
                })?;
                trust.insert(
                    slot,
                    WorkerStats {
                        spot_checked: field_usize(e, "checked")?,
                        spot_failed: field_usize(e, "failed")?,
                        evicted: e.get("evicted").and_then(Json::as_bool).unwrap_or(false),
                        ..WorkerStats::default()
                    },
                );
            }
        }
        // v2 files predate identity-keyed slots: absent → empty map, and
        // returning workers are treated as fresh identities on new slots.
        let mut identities = BTreeMap::new();
        if let Some(entries) = doc.get("identities").and_then(Json::as_arr) {
            for e in entries {
                let slot = e.get("slot").and_then(u64_from_json).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "dist.json identity slot")
                })?;
                let id = e.get("worker_id").and_then(Json::as_str).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "dist.json identity worker_id")
                })?;
                identities.insert(slot, id.to_string());
            }
        }
        let quarantined = match doc.get("quarantined").and_then(Json::as_arr) {
            None => Vec::new(),
            Some(entries) => entries.iter().map(diff_from_json).collect::<io::Result<Vec<_>>>()?,
        };
        let quarantined_total =
            doc.get("quarantined_total").and_then(Json::as_usize).unwrap_or(quarantined.len());
        Ok(Some(Self {
            steps_done: field_usize(&doc, "steps_done")?,
            next_lease: doc.get("next_lease").and_then(u64_from_json).unwrap_or(0),
            pending,
            worker_rng,
            trust,
            identities,
            quarantined,
            quarantined_total,
        }))
    }
}
