//! The coordinator/worker message protocol.
//!
//! Strict request/response, always initiated by the worker over its own
//! connection:
//!
//! ```text
//! worker                          coordinator
//!   | -- hello {version, fp} ------> |   version check
//!   | <- challenge {nonce} --------- |   (only when auth is enabled)
//!   | -- auth {proof} -------------> |   HMAC-SHA256(token, nonce)
//!   | <- welcome {slot, seed, rng} - |   verify fp, assign a slot
//!   | -- lease_req {slot, want} ---> |   energy-weighted batch + cov delta
//!   | <- lease {id, jobs, cov} ----- |   (or wait / drain)
//!   | -- heartbeat {slot, lease} --> |   extends the lease deadline
//!   | <- ack {cov} ----------------- |
//!   | -- results {lease, items,   -> |   absorb runs, union coverage
//!   |             cov, rng}          |
//!   | <- ack {cov} ----------------- |   (or drain)
//!   | -- bye ----------------------> |   connection closes
//! ```
//!
//! Coverage flows as sparse per-model index deltas
//! ([`dx_coverage::CoverageSignal::diff_indices`]) relative to what each
//! side already told the other, so steady-state sync cost is proportional
//! to *new* coverage, not model size. Seeds (`u64`) and RNG words travel
//! as decimal strings — JSON numbers cannot carry 64-bit integers exactly.

use std::io;

use deepxplore::SeedRun;
use dx_campaign::codec::{
    bad, field_usize, rng_state_from_json, rng_state_json, seed_run_from_json, seed_run_json,
    tensor_fields, tensor_from_json, u64_from_json, u64_json,
};
use dx_campaign::json::{build, Json};
use dx_coverage::CoverageSignal;
use dx_telemetry::phase::LocalHist;
use dx_tensor::Tensor;

/// Bumped on any incompatible message or codec change; a mismatch is
/// rejected at `hello` time. v2: metric-generic coverage units plus
/// hyperparameter/constraint fingerprinting. v3: composite metric specs
/// (component-prefixed coverage deltas) and per-component
/// `newly_by_component` splits in seed-run results. v4: the
/// challenge/auth admission handshake (shared-secret worker
/// authentication), and `want` in `lease_req` became advisory — an
/// adaptive coordinator may grant larger leases than requested. v5:
/// `results` may carry an advisory `telemetry` snapshot (per-phase
/// hot-path histogram deltas plus heartbeat round-trip times), which the
/// coordinator folds into its metrics registry. v6: multi-tenant
/// dispatch — `hello` carries a persistent `worker_id` (bound into the
/// auth proof, and what eviction/quarantine records are keyed by), and
/// `lease`/`results` are tagged with a campaign id; each lease also
/// carries its campaign's master seed plus the worker's saved generator
/// RNG state for that campaign, so one fleet serves many campaigns and
/// a worker builds per-campaign generator state lazily from the leases
/// it is handed.
pub const PROTOCOL_VERSION: u64 = 6;

/// What the coordinator checks before admitting a worker: both sides must
/// be fuzzing the same model suite, under the same coverage metric, with
/// the same generation hyperparameters and domain constraint — a worker
/// with a mismatched step size or iteration budget would silently pollute
/// the corpus with irreproducible results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Human-readable suite label (e.g. `mnist@test`).
    pub label: String,
    /// The coverage metric spec, in `MetricSpec` display form
    /// (`neuron`, `multisection:<k>`, `boundary`, or a `+`-joined
    /// composite like `multisection:4+boundary`). A worker steering by a
    /// different spec — or the same components in a different order, which
    /// changes the composite unit-space layout — is rejected at hello.
    pub metric: String,
    /// Per-model tracked-unit totals (neurons, or neuron-sections) — a
    /// cheap structural hash of the models and the coverage configuration.
    pub units: Vec<usize>,
    /// Digest of the multisection profile ranges (`none` for the neuron
    /// metric). Two processes sectioning the same neurons at different
    /// boundaries would union semantically different indices; the digest
    /// rejects them at admission instead.
    pub profiles: String,
    /// Canonical digest of the Algorithm 1 hyperparameters.
    pub hyper: String,
    /// Canonical digest of the domain constraint (parameters included).
    pub constraint: String,
}

impl Fingerprint {
    fn to_json(&self) -> Json {
        build::obj(vec![
            ("label", build::str(&self.label)),
            ("metric", build::str(&self.metric)),
            ("units", build::ints(&self.units)),
            ("profiles", build::str(&self.profiles)),
            ("hyper", build::str(&self.hyper)),
            ("constraint", build::str(&self.constraint)),
        ])
    }

    fn from_json(v: &Json) -> io::Result<Self> {
        let str_field = |key: &str| {
            v.get(key).and_then(Json::as_str).map(str::to_string).ok_or_else(|| bad(key))
        };
        Ok(Self {
            label: str_field("label")?,
            metric: str_field("metric")?,
            units: usizes(v.get("units").ok_or_else(|| bad("units"))?, "units")?,
            profiles: str_field("profiles")?,
            hyper: str_field("hyper")?,
            constraint: str_field("constraint")?,
        })
    }
}

/// Per-model sparse coverage delta: newly covered flat unit offsets
/// (neurons under the paper's metric, neuron-sections under
/// multisection, corners under boundary — whichever metric the
/// fingerprint admitted). Under a composite metric the offsets are
/// component-prefixed: each component's units are shifted by the
/// preceding components' totals, so one flat list carries every
/// component's news (see `dx_coverage::CoverageSignal::diff_indices`).
pub type CovDelta = Vec<Vec<usize>>;

/// The delta routine both protocol sides share: everything `source`
/// covers that `view` (the model of what the peer already knows) does
/// not, after which the view catches up. The coordinator calls it with
/// the global union against a per-connection view; the worker with its
/// local signals against its known-to-coordinator view.
pub fn coverage_news(source: &[CoverageSignal], view: &mut [CoverageSignal]) -> CovDelta {
    source
        .iter()
        .zip(view.iter_mut())
        .map(|(s, v)| {
            let delta = s.diff_indices(v);
            v.apply_covered_indices(&delta);
            delta
        })
        .collect()
}

/// Advisory worker-side telemetry shipped with `results` (protocol v5):
/// per-phase hot-path histogram deltas and heartbeat round-trip times
/// accumulated since the worker's previous report, all over the shared
/// [`dx_telemetry::phase::TIME_BUCKETS`] layout. Advisory means the
/// coordinator merges what fits into its registry and ignores the rest —
/// fabricated timing can only distort its own slot's latency series,
/// never campaign state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// `(phase name, delta)` pairs in [`dx_telemetry::phase::Phase`]
    /// naming (`forward`, `gradient`, `constraint`, `coverage`).
    pub phases: Vec<(String, LocalHist)>,
    /// Heartbeat round-trip delta, when any heartbeats were sent.
    pub heartbeat: Option<LocalHist>,
}

impl TelemetrySnapshot {
    /// Whether there is anything to ship.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|(_, h)| h.is_empty()) && self.heartbeat.is_none()
    }
}

/// One leased fuzzing job.
#[derive(Clone, Debug)]
pub struct Job {
    /// Corpus entry id.
    pub seed_id: usize,
    /// The entry's input, batched `[1, ...]`.
    pub input: Tensor,
}

/// One completed fuzzing job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Corpus entry id the job ran on.
    pub seed_id: usize,
    /// The step outcome.
    pub run: SeedRun,
}

/// A protocol message.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Worker introduction; the coordinator verifies the fingerprint.
    Hello {
        /// Sender's [`PROTOCOL_VERSION`].
        version: u64,
        /// Sender's model-suite fingerprint.
        fingerprint: Fingerprint,
        /// The worker's persistent identity. Stable across reconnects
        /// (configured, or derived once per process), bound into the
        /// auth proof when the fleet runs a shared secret, and the key
        /// for the coordinator's trust records — an evicted identity
        /// stays evicted no matter how often it reconnects.
        worker_id: String,
    },
    /// Admission: the worker's slot and the campaign master seed (the
    /// worker derives its generator stream from them, exactly like an
    /// in-process pool worker would).
    Welcome {
        /// Assigned worker slot.
        slot: u64,
        /// Campaign master seed.
        campaign_seed: u64,
        /// Saved generator RNG state for this slot — present when resuming
        /// a checkpointed fleet, so streams continue instead of restarting.
        rng_state: Option<[u64; 4]>,
    },
    /// Admission refused (version/fingerprint/auth mismatch, malformed
    /// frame, or an eviction).
    Reject {
        /// Human-readable cause.
        reason: String,
    },
    /// Authentication demanded before admission proceeds: the coordinator
    /// runs with a shared secret and reveals no campaign state (not even
    /// the fingerprint verdict) until the peer proves it holds the same
    /// secret. Sent in reply to `hello`.
    Challenge {
        /// Fresh per-connection nonce the proof must cover.
        nonce: String,
    },
    /// The worker's answer to a `challenge`:
    /// `hex(HMAC-SHA256(token, nonce))` (see [`crate::auth::proof`]).
    AuthProof {
        /// The hex-encoded MAC.
        proof: String,
    },
    /// Worker asks for jobs. `want` is advisory: a coordinator running
    /// adaptive lease sizing may grant more (workers process whatever a
    /// lease carries), a busy corpus may yield fewer.
    LeaseRequest {
        /// Sender's slot.
        slot: u64,
        /// Jobs wanted.
        want: usize,
    },
    /// A batch of jobs on a deadline, plus the coordinator's coverage news.
    Lease {
        /// Lease id, echoed in heartbeats and results.
        lease: u64,
        /// The campaign these jobs belong to (`0` on a single-campaign
        /// coordinator; a tenant id under the service daemon).
        campaign: u64,
        /// The campaign's master seed. The worker derives its generator
        /// stream for this campaign from `(campaign_seed, slot)` on the
        /// first lease that mentions the campaign.
        campaign_seed: u64,
        /// The worker's saved generator RNG state for this campaign —
        /// present when the dispatcher checkpointed one (fleet resume),
        /// honored only on the lease that first introduces the campaign
        /// to this worker.
        rng_state: Option<[u64; 4]>,
        /// The leased jobs.
        jobs: Vec<Job>,
        /// Global-union coverage (of this campaign) the worker hasn't
        /// seen yet.
        cov: CovDelta,
    },
    /// Nothing schedulable right now (everything leased out); retry after
    /// the given pause.
    Wait {
        /// Suggested pause before the next `lease_req`.
        millis: u64,
    },
    /// The campaign is over (budget, coverage target, or drain request);
    /// the worker should send `bye` and exit.
    Drain,
    /// Keep-alive for a long-running lease; extends its deadline.
    Heartbeat {
        /// Sender's slot.
        slot: u64,
        /// The lease being worked on.
        lease: u64,
    },
    /// Completed lease: per-seed outcomes, local coverage delta, and the
    /// worker's generator RNG state (persisted for fleet resume).
    Results {
        /// Sender's slot.
        slot: u64,
        /// The lease these results answer.
        lease: u64,
        /// The campaign the lease was issued under, echoed back.
        campaign: u64,
        /// Per-seed outcomes, in lease order.
        items: Vec<JobResult>,
        /// Coverage the worker found (in the lease's campaign) that it
        /// hasn't reported yet.
        cov: CovDelta,
        /// Worker generator RNG state for the lease's campaign, after
        /// the lease.
        rng_state: [u64; 4],
        /// Advisory timing deltas since the previous report (`None` from
        /// workers with nothing to report, e.g. timing disabled).
        telemetry: Option<TelemetrySnapshot>,
    },
    /// Acknowledgement carrying the coordinator's coverage news.
    Ack {
        /// Global-union coverage the worker hasn't seen yet.
        cov: CovDelta,
    },
    /// Clean goodbye; the connection closes.
    Bye,
}

fn usizes(v: &Json, what: &str) -> io::Result<Vec<usize>> {
    v.as_arr()
        .ok_or_else(|| bad(what))?
        .iter()
        .map(|x| x.as_usize().ok_or_else(|| bad(what)))
        .collect()
}

fn cov_json(cov: &CovDelta) -> Json {
    Json::Arr(cov.iter().map(|m| build::ints(m)).collect())
}

fn cov_from_json(v: &Json) -> io::Result<CovDelta> {
    v.as_arr().ok_or_else(|| bad("cov"))?.iter().map(|m| usizes(m, "cov indices")).collect()
}

fn job_json(j: &Job) -> Json {
    let (shape, data) = tensor_fields(&j.input);
    build::obj(vec![("seed_id", build::int(j.seed_id)), ("shape", shape), ("data", data)])
}

fn job_from_json(v: &Json) -> io::Result<Job> {
    Ok(Job { seed_id: field_usize(v, "seed_id")?, input: tensor_from_json(v)? })
}

fn item_json(r: &JobResult) -> Json {
    build::obj(vec![("seed_id", build::int(r.seed_id)), ("run", seed_run_json(&r.run))])
}

fn item_from_json(v: &Json) -> io::Result<JobResult> {
    Ok(JobResult {
        seed_id: field_usize(v, "seed_id")?,
        run: seed_run_from_json(v.get("run").ok_or_else(|| bad("run"))?)?,
    })
}

fn hist_json(h: &LocalHist) -> Json {
    let counts: Vec<usize> = h.counts.iter().map(|&c| c as usize).collect();
    build::obj(vec![
        ("counts", build::ints(&counts)),
        ("sum", build::num(h.sum)),
        ("count", u64_json(h.count)),
    ])
}

fn hist_from_json(v: &Json) -> io::Result<LocalHist> {
    Ok(LocalHist {
        counts: usizes(v.get("counts").ok_or_else(|| bad("counts"))?, "counts")?
            .into_iter()
            .map(|c| c as u64)
            .collect(),
        sum: v.get("sum").and_then(Json::as_f64).ok_or_else(|| bad("sum"))?,
        count: v.get("count").and_then(u64_from_json).ok_or_else(|| bad("count"))?,
    })
}

fn telemetry_json(t: &TelemetrySnapshot) -> Json {
    let phases = t
        .phases
        .iter()
        .map(|(name, h)| build::obj(vec![("phase", build::str(name)), ("hist", hist_json(h))]))
        .collect();
    build::obj(vec![
        ("phases", Json::Arr(phases)),
        ("heartbeat", t.heartbeat.as_ref().map_or(Json::Null, hist_json)),
    ])
}

fn telemetry_from_json(v: &Json) -> io::Result<TelemetrySnapshot> {
    let phases = v
        .get("phases")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("phases"))?
        .iter()
        .map(|p| {
            let name = p.get("phase").and_then(Json::as_str).ok_or_else(|| bad("phase"))?;
            Ok((name.to_string(), hist_from_json(p.get("hist").ok_or_else(|| bad("hist"))?)?))
        })
        .collect::<io::Result<_>>()?;
    let heartbeat = match v.get("heartbeat") {
        None | Some(Json::Null) => None,
        Some(h) => Some(hist_from_json(h)?),
    };
    Ok(TelemetrySnapshot { phases, heartbeat })
}

fn tagged(tag: &str, mut fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("type", build::str(tag))];
    all.append(&mut fields);
    build::obj(all)
}

impl Msg {
    /// Encodes the message as one JSON document.
    pub fn to_json(&self) -> Json {
        match self {
            Msg::Hello { version, fingerprint, worker_id } => tagged(
                "hello",
                vec![
                    ("version", u64_json(*version)),
                    ("fp", fingerprint.to_json()),
                    ("worker_id", build::str(worker_id)),
                ],
            ),
            Msg::Welcome { slot, campaign_seed, rng_state } => tagged(
                "welcome",
                vec![
                    ("slot", u64_json(*slot)),
                    ("campaign_seed", u64_json(*campaign_seed)),
                    ("rng_state", rng_state.as_ref().map_or(Json::Null, rng_state_json)),
                ],
            ),
            Msg::Reject { reason } => tagged("reject", vec![("reason", build::str(reason))]),
            Msg::Challenge { nonce } => tagged("challenge", vec![("nonce", build::str(nonce))]),
            Msg::AuthProof { proof } => tagged("auth", vec![("proof", build::str(proof))]),
            Msg::LeaseRequest { slot, want } => {
                tagged("lease_req", vec![("slot", u64_json(*slot)), ("want", build::int(*want))])
            }
            Msg::Lease { lease, campaign, campaign_seed, rng_state, jobs, cov } => tagged(
                "lease",
                vec![
                    ("lease", u64_json(*lease)),
                    ("campaign", u64_json(*campaign)),
                    ("campaign_seed", u64_json(*campaign_seed)),
                    ("rng_state", rng_state.as_ref().map_or(Json::Null, rng_state_json)),
                    ("jobs", Json::Arr(jobs.iter().map(job_json).collect())),
                    ("cov", cov_json(cov)),
                ],
            ),
            Msg::Wait { millis } => tagged("wait", vec![("millis", u64_json(*millis))]),
            Msg::Drain => tagged("drain", vec![]),
            Msg::Heartbeat { slot, lease } => {
                tagged("heartbeat", vec![("slot", u64_json(*slot)), ("lease", u64_json(*lease))])
            }
            Msg::Results { slot, lease, campaign, items, cov, rng_state, telemetry } => {
                let mut fields = vec![
                    ("slot", u64_json(*slot)),
                    ("lease", u64_json(*lease)),
                    ("campaign", u64_json(*campaign)),
                    ("items", Json::Arr(items.iter().map(item_json).collect())),
                    ("cov", cov_json(cov)),
                    ("rng_state", rng_state_json(rng_state)),
                ];
                if let Some(t) = telemetry {
                    fields.push(("telemetry", telemetry_json(t)));
                }
                tagged("results", fields)
            }
            Msg::Ack { cov } => tagged("ack", vec![("cov", cov_json(cov))]),
            Msg::Bye => tagged("bye", vec![]),
        }
    }

    /// Decodes a message encoded by [`Msg::to_json`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on an unknown tag or missing/malformed field.
    pub fn from_json(v: &Json) -> io::Result<Msg> {
        let tag = v.get("type").and_then(Json::as_str).ok_or_else(|| bad("type"))?;
        let u64_field = |key: &str| v.get(key).and_then(u64_from_json).ok_or_else(|| bad(key));
        Ok(match tag {
            "hello" => Msg::Hello {
                version: u64_field("version")?,
                fingerprint: Fingerprint::from_json(v.get("fp").ok_or_else(|| bad("fp"))?)?,
                worker_id: v
                    .get("worker_id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("worker_id"))?
                    .to_string(),
            },
            "welcome" => Msg::Welcome {
                slot: u64_field("slot")?,
                campaign_seed: u64_field("campaign_seed")?,
                rng_state: match v.get("rng_state") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(rng_state_from_json(s)?),
                },
            },
            "reject" => Msg::Reject {
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("reason"))?
                    .to_string(),
            },
            "challenge" => Msg::Challenge {
                nonce: v
                    .get("nonce")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("nonce"))?
                    .to_string(),
            },
            "auth" => Msg::AuthProof {
                proof: v
                    .get("proof")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("proof"))?
                    .to_string(),
            },
            "lease_req" => {
                Msg::LeaseRequest { slot: u64_field("slot")?, want: field_usize(v, "want")? }
            }
            "lease" => Msg::Lease {
                lease: u64_field("lease")?,
                campaign: u64_field("campaign")?,
                campaign_seed: u64_field("campaign_seed")?,
                rng_state: match v.get("rng_state") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(rng_state_from_json(s)?),
                },
                jobs: v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("jobs"))?
                    .iter()
                    .map(job_from_json)
                    .collect::<io::Result<_>>()?,
                cov: cov_from_json(v.get("cov").ok_or_else(|| bad("cov"))?)?,
            },
            "wait" => Msg::Wait { millis: u64_field("millis")? },
            "drain" => Msg::Drain,
            "heartbeat" => Msg::Heartbeat { slot: u64_field("slot")?, lease: u64_field("lease")? },
            "results" => Msg::Results {
                slot: u64_field("slot")?,
                lease: u64_field("lease")?,
                campaign: u64_field("campaign")?,
                items: v
                    .get("items")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("items"))?
                    .iter()
                    .map(item_from_json)
                    .collect::<io::Result<_>>()?,
                cov: cov_from_json(v.get("cov").ok_or_else(|| bad("cov"))?)?,
                rng_state: rng_state_from_json(
                    v.get("rng_state").ok_or_else(|| bad("rng_state"))?,
                )?,
                telemetry: match v.get("telemetry") {
                    None | Some(Json::Null) => None,
                    Some(t) => Some(telemetry_from_json(t)?),
                },
            },
            "ack" => Msg::Ack { cov: cov_from_json(v.get("cov").ok_or_else(|| bad("cov"))?)? },
            "bye" => Msg::Bye,
            other => return Err(bad(&format!("message type `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_campaign::codec::parse_doc;
    use dx_tensor::rng;

    fn round_trip(msg: &Msg) -> Msg {
        let text = msg.to_json().to_string();
        Msg::from_json(&parse_doc(&text).unwrap()).unwrap()
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            label: "mnist@test".into(),
            metric: "multisection:4".into(),
            units: vec![52, 148, 268],
            profiles: "fnv:00000000deadbeef".into(),
            hyper: "l1=1 l2=0.1 s=0.04 iters=50 dc=None pre=false pick=Random npm=1".into(),
            constraint: "clip".into(),
        }
    }

    #[test]
    fn hello_welcome_round_trip() {
        match round_trip(&Msg::Hello {
            version: PROTOCOL_VERSION,
            fingerprint: fp(),
            worker_id: "w-cafe".into(),
        }) {
            Msg::Hello { version, fingerprint, worker_id } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(fingerprint, fp());
                assert_eq!(worker_id, "w-cafe");
            }
            other => panic!("{other:?}"),
        }
        // A v5-style hello without an identity is malformed in v6.
        let text = r#"{"type":"hello","version":"6","fp":{"label":"x","metric":"neuron","units":[],"profiles":"none","hyper":"h","constraint":"c"}}"#;
        assert!(Msg::from_json(&parse_doc(text).unwrap()).is_err());
        match round_trip(&Msg::Welcome {
            slot: 3,
            campaign_seed: u64::MAX,
            rng_state: Some([1, 2, 3, u64::MAX]),
        }) {
            Msg::Welcome { slot, campaign_seed, rng_state } => {
                assert_eq!(slot, 3);
                assert_eq!(campaign_seed, u64::MAX, "seeds above 2^53 must survive");
                assert_eq!(rng_state, Some([1, 2, 3, u64::MAX]));
            }
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::Welcome { slot: 0, campaign_seed: 42, rng_state: None }) {
            Msg::Welcome { rng_state: None, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lease_and_results_round_trip() {
        let input = rng::uniform(&mut rng::rng(1), &[1, 6], 0.0, 1.0);
        let lease = Msg::Lease {
            lease: 9,
            campaign: 7,
            campaign_seed: u64::MAX - 1,
            rng_state: Some([4, 3, 2, 1]),
            jobs: vec![Job { seed_id: 4, input: input.clone() }],
            cov: vec![vec![0, 5, 9], vec![]],
        };
        match round_trip(&lease) {
            Msg::Lease { lease, campaign, campaign_seed, rng_state, jobs, cov } => {
                assert_eq!(lease, 9);
                assert_eq!(campaign, 7);
                assert_eq!(campaign_seed, u64::MAX - 1, "seeds above 2^53 must survive");
                assert_eq!(rng_state, Some([4, 3, 2, 1]));
                assert_eq!(jobs[0].seed_id, 4);
                assert_eq!(jobs[0].input, input);
                assert_eq!(cov, vec![vec![0, 5, 9], vec![]]);
            }
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::Lease {
            lease: 1,
            campaign: 0,
            campaign_seed: 42,
            rng_state: None,
            jobs: vec![],
            cov: vec![],
        }) {
            Msg::Lease { rng_state: None, .. } => {}
            other => panic!("{other:?}"),
        }
        let results = Msg::Results {
            slot: 1,
            lease: 9,
            campaign: 7,
            items: vec![JobResult {
                seed_id: 4,
                run: SeedRun {
                    test: None,
                    preexisting: false,
                    iterations: 12,
                    newly_covered: 3,
                    newly_by_component: vec![3],
                    corpus_candidate: Some(input.clone()),
                },
            }],
            cov: vec![vec![1], vec![2, 3]],
            rng_state: [9, 8, 7, 6],
            telemetry: None,
        };
        match round_trip(&results) {
            Msg::Results { campaign, items, cov, rng_state, telemetry, .. } => {
                assert_eq!(campaign, 7);
                assert_eq!(items[0].run.iterations, 12);
                assert_eq!(items[0].run.corpus_candidate.as_ref(), Some(&input));
                assert_eq!(cov, vec![vec![1], vec![2, 3]]);
                assert_eq!(rng_state, [9, 8, 7, 6]);
                assert_eq!(telemetry, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn results_telemetry_round_trips() {
        let mut forward = LocalHist::new();
        forward.record(0.0001);
        forward.record(0.02);
        let mut heartbeat = LocalHist::new();
        heartbeat.record(0.0005);
        let snapshot = TelemetrySnapshot {
            phases: vec![("forward".into(), forward.clone())],
            heartbeat: Some(heartbeat.clone()),
        };
        let results = Msg::Results {
            slot: 2,
            lease: 11,
            campaign: 0,
            items: vec![],
            cov: vec![],
            rng_state: [1, 2, 3, 4],
            telemetry: Some(snapshot.clone()),
        };
        match round_trip(&results) {
            Msg::Results { telemetry: Some(t), .. } => {
                assert_eq!(t, snapshot);
                assert_eq!(t.phases[0].1.count, 2);
                assert_eq!(t.heartbeat.as_ref().unwrap().counts, heartbeat.counts);
            }
            other => panic!("{other:?}"),
        }
        // A frame without a telemetry field decodes as None.
        let text = r#"{"type":"results","slot":"0","lease":"1","campaign":"0","items":[],"cov":[],"rng_state":["1","2","3","4"]}"#;
        match Msg::from_json(&parse_doc(text).unwrap()).unwrap() {
            Msg::Results { telemetry: None, .. } => {}
            other => panic!("{other:?}"),
        }
        // A malformed snapshot is InvalidData, like any other bad field.
        let text = r#"{"type":"results","slot":"0","lease":"1","campaign":"0","items":[],"cov":[],"rng_state":["1","2","3","4"],"telemetry":{"phases":[{"phase":"forward"}]}}"#;
        assert!(Msg::from_json(&parse_doc(text).unwrap()).is_err());
    }

    #[test]
    fn control_messages_round_trip() {
        assert!(matches!(round_trip(&Msg::Drain), Msg::Drain));
        assert!(matches!(round_trip(&Msg::Bye), Msg::Bye));
        assert!(matches!(round_trip(&Msg::Wait { millis: 50 }), Msg::Wait { millis: 50 }));
        assert!(matches!(
            round_trip(&Msg::Heartbeat { slot: 2, lease: 7 }),
            Msg::Heartbeat { slot: 2, lease: 7 }
        ));
    }

    #[test]
    fn auth_messages_round_trip() {
        match round_trip(&Msg::Challenge { nonce: "00ff".into() }) {
            Msg::Challenge { nonce } => assert_eq!(nonce, "00ff"),
            other => panic!("{other:?}"),
        }
        match round_trip(&Msg::AuthProof { proof: "deadbeef".into() }) {
            Msg::AuthProof { proof } => assert_eq!(proof, "deadbeef"),
            other => panic!("{other:?}"),
        }
        for text in [r#"{"type":"challenge"}"#, r#"{"type":"auth","proof":7}"#] {
            let doc = parse_doc(text).unwrap();
            assert!(Msg::from_json(&doc).is_err(), "accepted `{text}`");
        }
    }

    #[test]
    fn unknown_or_malformed_messages_are_rejected() {
        for text in [
            r#"{"type":"warp"}"#,
            r#"{"no_type":1}"#,
            r#"{"type":"lease","lease":"1"}"#,
            // A v5-style lease with no campaign tag.
            r#"{"type":"lease","lease":"1","jobs":[],"cov":[]}"#,
            // A v5-style results frame with no campaign tag.
            r#"{"type":"results","slot":"0","lease":"1","items":[],"cov":[],"rng_state":["1","2","3","4"]}"#,
            r#"{"type":"results","slot":"0","lease":"1","campaign":"0","items":[{"seed_id":0}],"cov":[],"rng_state":["1","2","3","4"]}"#,
        ] {
            let doc = parse_doc(text).unwrap();
            assert!(Msg::from_json(&doc).is_err(), "accepted `{text}`");
        }
    }
}
