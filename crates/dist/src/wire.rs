//! Length-prefixed JSON framing over any byte stream.
//!
//! A frame is a 4-byte big-endian payload length followed by exactly that
//! many bytes of UTF-8 JSON (one document per frame, encoded by
//! [`dx_campaign::json`]). The format is self-delimiting, so a stream of
//! frames needs no other synchronization — and because the payloads reuse
//! the checkpoint codecs, a wire message and a checkpoint line for the
//! same value are byte-identical.

use std::io::{self, Read, Write};
use std::sync::{Arc, OnceLock};

use dx_campaign::codec::parse_doc;
use dx_campaign::json::Json;
use dx_telemetry::Counter;

/// Upper bound on one frame's payload, as a corruption guard: a garbage
/// length prefix would otherwise ask for gigabytes.
pub const MAX_FRAME: usize = 1 << 28;

/// Process-wide wire traffic counters (`dx_frames_total` /
/// `dx_bytes_total` by direction), registered on the global registry so
/// any `--metrics-addr` endpoint in the process — coordinator or worker —
/// shows its own traffic. Cached: the framing hot path must not take the
/// registry lock per frame.
struct WireMetrics {
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = dx_telemetry::global();
        reg.set_help("dx_frames_total", "Wire frames sent/received by this process.");
        reg.set_help("dx_bytes_total", "Wire bytes sent/received by this process.");
        WireMetrics {
            frames_in: reg.counter("dx_frames_total", &[("dir", "in")]),
            frames_out: reg.counter("dx_frames_total", &[("dir", "out")]),
            bytes_in: reg.counter("dx_bytes_total", &[("dir", "in")]),
            bytes_out: reg.counter("dx_bytes_total", &[("dir", "out")]),
        }
    })
}

fn oversized_for(len: usize, cap: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("frame of {len} bytes exceeds the {cap}-byte cap"),
    )
}

fn oversized(len: usize) -> io::Error {
    oversized_for(len, MAX_FRAME)
}

/// Writes one framed message and flushes.
///
/// # Errors
///
/// Any I/O failure, or a message over [`MAX_FRAME`] bytes.
pub fn write_frame(w: &mut impl Write, msg: &Json) -> io::Result<()> {
    let payload = msg.to_string();
    if payload.len() > MAX_FRAME {
        return Err(oversized(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()?;
    let m = wire_metrics();
    m.frames_out.inc();
    m.bytes_out.inc_by(4 + payload.len() as u64);
    Ok(())
}

/// Reads one framed message, blocking until it is complete.
///
/// # Errors
///
/// `UnexpectedEof` on a stream that ends mid-frame, `InvalidData` on an
/// oversized length prefix or a payload that is not valid JSON.
pub fn read_frame(r: &mut impl Read) -> io::Result<Json> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let m = wire_metrics();
    m.frames_in.inc();
    m.bytes_in.inc_by(4 + len as u64);
    decode(&payload)
}

fn decode(payload: &[u8]) -> io::Result<Json> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))?;
    parse_doc(text)
}

/// An incremental frame reader for sockets with a read timeout.
///
/// [`read_frame`] assumes blocking reads: a timeout mid-frame would lose
/// the bytes already consumed. `FrameReader` instead accumulates partial
/// header/payload bytes across calls, so a server can poll a connection
/// (checking drain flags between polls) without ever corrupting framing.
pub struct FrameReader {
    buf: Vec<u8>,
    /// Payload length once the 4-byte header is complete.
    need: Option<usize>,
    /// Per-reader frame cap (≤ [`MAX_FRAME`]); servers start unadmitted
    /// connections small so a stranger cannot demand a huge allocation
    /// with a four-byte length prefix.
    cap: usize,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// A reader with no partial state and the default [`MAX_FRAME`] cap.
    pub fn new() -> Self {
        Self::with_cap(MAX_FRAME)
    }

    /// A reader capped at `cap` bytes per frame (clamped to
    /// [`MAX_FRAME`]). A length prefix over the cap is `InvalidData`
    /// *before* any payload allocation happens.
    pub fn with_cap(cap: usize) -> Self {
        Self { buf: Vec::new(), need: None, cap: cap.min(MAX_FRAME) }
    }

    /// Raises (or lowers) the cap for subsequent frames — e.g. once a
    /// connection has authenticated and earned the full allowance. Takes
    /// effect from the next length prefix read.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap.min(MAX_FRAME);
    }

    /// Reads whatever is available; returns `Ok(Some(msg))` once a full
    /// frame has accumulated, `Ok(None)` when the read would block (the
    /// partial frame is kept for the next poll).
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` when the peer closes the stream (mid-frame or
    /// between frames), `InvalidData` on oversized or malformed payloads,
    /// and any other I/O error.
    pub fn poll(&mut self, r: &mut impl Read) -> io::Result<Option<Json>> {
        loop {
            let target = match self.need {
                None => 4,
                Some(len) => 4 + len,
            };
            if self.buf.len() == target {
                if let Some(len) = self.need {
                    let msg = decode(self.buf.get(4..).unwrap_or_default())?;
                    self.buf.clear();
                    self.need = None;
                    let m = wire_metrics();
                    m.frames_in.inc();
                    m.bytes_in.inc_by(4 + len as u64);
                    return Ok(Some(msg));
                }
                // Header complete: learn the payload length and keep going.
                let len =
                    self.buf.iter().take(4).fold(0usize, |acc, &b| (acc << 8) | usize::from(b));
                if len > self.cap {
                    return Err(oversized_for(len, self.cap));
                }
                self.need = Some(len);
                continue;
            }
            let mut chunk = [0u8; 4096];
            let want = (target - self.buf.len()).min(chunk.len());
            // analysis: allow(panic): `want` is min-clamped to chunk.len()
            match r.read(&mut chunk[..want]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the connection",
                    ))
                }
                // analysis: allow(panic): `n <= want <= chunk.len()` by the Read contract
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_campaign::json::build;

    fn sample() -> Json {
        build::obj(vec![
            ("type", build::str("lease")),
            ("jobs", build::ints(&[1, 2, 3])),
            ("note", build::str("héllo\n\"frame\"")),
        ])
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        write_frame(&mut buf, &Json::Null).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), sample());
        assert_eq!(read_frame(&mut r).unwrap(), Json::Null);
        assert!(r.is_empty());
    }

    /// Yields at most one byte per read, interleaved with `WouldBlock`
    /// errors — the worst legal behavior of a socket with a read timeout.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        starve: bool,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            self.starve = !self.starve;
            if self.starve {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "starved"));
            }
            if self.pos == self.data.len() {
                return Ok(0);
            }
            out[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_partial_reads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        write_frame(&mut buf, &build::ints(&[7, 8])).unwrap();
        let mut src = Trickle { data: &buf, pos: 0, starve: false };
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match reader.poll(&mut src) {
                Ok(Some(msg)) => got.push(msg),
                Ok(None) => continue, // WouldBlock: partial state retained.
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, vec![sample(), build::ints(&[7, 8])]);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        for cut in 0..buf.len() - 1 {
            let mut r = &buf[..cut];
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
            // The incremental reader agrees.
            let mut src = &buf[..cut];
            let mut reader = FrameReader::new();
            match reader.poll(&mut src) {
                Ok(Some(_)) => panic!("cut at {cut} produced a frame"),
                Ok(None) => unreachable!("slices never block"),
                Err(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (u32::MAX).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xxxx");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
        let mut reader = FrameReader::new();
        let mut r = &buf[..];
        assert_eq!(reader.poll(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn per_reader_cap_rejects_frames_the_default_would_allow() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        // A cap below the frame size rejects at the length prefix...
        let mut small = FrameReader::with_cap(8);
        let mut r = &buf[..];
        assert_eq!(small.poll(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
        // ...and raising the cap (fresh frame boundary) admits it again.
        let mut raised = FrameReader::with_cap(8);
        raised.set_cap(MAX_FRAME);
        let mut r = &buf[..];
        assert_eq!(raised.poll(&mut r).unwrap().unwrap(), sample());
        // with_cap never exceeds the global MAX_FRAME guard.
        let mut huge = FrameReader::with_cap(usize::MAX);
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0, 0];
        assert_eq!(huge.poll(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_json_payload_is_rejected() {
        let mut buf = 3u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"{x}");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}
