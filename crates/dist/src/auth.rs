//! Shared-secret worker authentication: HMAC-SHA-256 challenge/response.
//!
//! When a coordinator is started with an auth token, every connection must
//! prove knowledge of the same token before the coordinator reveals any
//! campaign state (fingerprint comparison, slot assignment, the campaign
//! seed). The handshake is a standard challenge/response:
//!
//! ```text
//! worker                          coordinator
//!   | -- hello {worker_id} ------>  |   version check only
//!   | <- challenge {nonce} -------  |   fresh per-connection nonce
//!   | -- auth {proof} ----------->  |   proof = HMAC-SHA256(token,
//!   | <- welcome / reject --------  |           nonce "|" worker_id)
//! ```
//!
//! The nonce is fresh per connection, so a captured proof cannot be
//! replayed against a later handshake. Since protocol v6 the proof also
//! covers the identity the worker announced in `hello`, so the
//! coordinator's trust records (spot-check verdicts, quarantine,
//! eviction) are keyed to an *authenticated* identity: a peer cannot
//! replay someone else's proof under a different name to inherit or
//! shed a record. SHA-256 and HMAC are implemented
//! here (FIPS 180-4 / RFC 2104) because the workspace is dependency-free
//! by policy; the vectors in the tests pin them to the RFC 4231 and NIST
//! reference values.
//!
//! **Scope.** This authenticates *peers*, not *traffic*: frames after the
//! handshake are neither encrypted nor MACed, so the token keeps strangers
//! and misconfigured fleets out but does not protect against an active
//! network attacker. Run fleets on trusted networks (or through a tunnel);
//! see the README's security-posture section.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

// analysis: allow(panic, file): the SHA-256/HMAC kernels index fixed-size
// [u32; 64]/[u32; 8]/[u8; 64] arrays with compile-time-bounded loop
// indices and constant ranges; none of the subscripts depend on input.

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 digest of `data` (FIPS 180-4).
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padding: 0x80, zeros, then the bit length as a big-endian u64.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (word, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *word = chunk.iter().fold(0u32, |acc, &b| (acc << 8) | u32::from(b));
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16].wrapping_add(s0).wrapping_add(w[t - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[t]).wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *s = s.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// HMAC-SHA-256 of `msg` under `key` (RFC 2104).
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut block = [0u8; 64];
    if key.len() > 64 {
        block[..32].copy_from_slice(&sha256(key));
    } else {
        block[..key.len()].copy_from_slice(key);
    }
    let mut inner: Vec<u8> = block.iter().map(|b| b ^ 0x36).collect();
    inner.extend_from_slice(msg);
    let mut outer: Vec<u8> = block.iter().map(|b| b ^ 0x5c).collect();
    outer.extend_from_slice(&sha256(&inner));
    sha256(&outer)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// The proof a worker presents for a challenge nonce:
/// `hex(HMAC-SHA256(token, nonce "|" worker_id))`. Binding the identity
/// announced at `hello` into the MAC makes the identity as trustworthy
/// as the token itself.
pub fn proof(token: &str, nonce: &str, worker_id: &str) -> String {
    let msg = format!("{nonce}|{worker_id}");
    hex(&hmac_sha256(token.as_bytes(), msg.as_bytes()))
}

/// Verifies a presented proof against the expected one without an early
/// exit, so the comparison time does not leak how long the matching
/// prefix was.
pub fn verify(token: &str, nonce: &str, worker_id: &str, presented: &str) -> bool {
    let expected = proof(token, nonce, worker_id);
    let mut diff = expected.len() ^ presented.len();
    for (a, b) in expected.bytes().zip(presented.bytes()) {
        diff |= (a ^ b) as usize;
    }
    diff == 0
}

/// A fresh per-connection challenge nonce: 32 hex chars hashed from the
/// wall clock, a process-wide counter, and ASLR'd addresses. Not a CSPRNG,
/// but unpredictable enough that proofs cannot be precomputed and never
/// repeats within a process (the counter alone guarantees that).
pub fn nonce() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let stack_probe = &count as *const _ as usize;
    let mut seed = Vec::new();
    seed.extend_from_slice(&count.to_le_bytes());
    seed.extend_from_slice(&nanos.to_le_bytes());
    seed.extend_from_slice(&secs.to_le_bytes());
    seed.extend_from_slice(&(stack_probe as u64).to_le_bytes());
    seed.extend_from_slice(&(nonce as fn() -> String as usize as u64).to_le_bytes());
    hex(&sha256(&seed)[..16])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_nist_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A multi-block message (> 64 bytes).
        assert_eq!(
            hex(&sha256(&[b'a'; 1000])),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn hmac_matches_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: shorter-than-block key ("Jefe").
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 6: key longer than one block (hashed first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn proof_verifies_only_with_the_right_token_nonce_and_identity() {
        let n = nonce();
        let p = proof("secret", &n, "w-1");
        assert!(verify("secret", &n, "w-1", &p));
        assert!(!verify("other", &n, "w-1", &p));
        assert!(!verify("secret", &nonce(), "w-1", &p));
        // A proof cannot be replayed under a different identity.
        assert!(!verify("secret", &n, "w-2", &p));
        assert!(!verify("secret", &n, "w-1", ""));
        assert!(!verify("secret", &n, "w-1", &format!("{p}00")));
    }

    #[test]
    fn nonces_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let n = nonce();
            assert_eq!(n.len(), 32);
            assert!(n.bytes().all(|b| b.is_ascii_hexdigit()));
            assert!(seen.insert(n), "nonce repeated");
        }
    }
}
