//! `dx-analysis` — in-tree whitebox static analysis for this workspace.
//!
//! DeepXplore's thesis is that systematic whitebox analysis finds the
//! faults random testing misses; this crate turns that lens on the
//! codebase itself. It is a rustc-`tidy`-style pass: a small
//! comment/string-aware lexer ([`lexer`]), a pluggable [`Check`] trait,
//! and a set of checks targeting the fault classes `clippy -D warnings`
//! cannot see — lock-order deadlock hazards, panic paths in fleet hot
//! loops, and drift between hand-maintained string-typed invariants
//! (wire protocol fields, checkpoint schemas, Prometheus metric names).
//!
//! Run it with `cargo run -p dx-analysis` (workspace scan) or
//! `deepxplore analyze`. Findings are machine-readable, one per line:
//!
//! ```text
//! crates/dist/src/coordinator.rs:798: [panic] `.expect("collected above")` on a hot path
//! ```
//!
//! A finding is suppressed — never silently — with an allow comment:
//!
//! ```text
//! // analysis: allow(panic): indices are compile-time bounded by the 64-round loop
//! ```
//!
//! The comment applies to its own line and the next; a justification
//! may wrap across consecutive `//` lines, which extend the scope to
//! the line after the last one. Add `, file` after the check id
//! (`allow(panic, file)`) to cover the whole file. The justification
//! after the second `:` is mandatory, and an allow that suppresses
//! nothing is itself reported, so stale allows cannot accumulate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
pub mod checks;
pub mod dataflow;
pub mod lexer;

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

use lexer::{Kind, Tok};

/// One reported problem: file, line, the check that fired, the message,
/// and an optional remediation hint (printed under `--fix-hints`).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path as scanned (relative to the scan root's parent invocation).
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// The check id (`lock-order`, `panic`, …).
    pub check: &'static str,
    /// Human-readable description of the problem.
    pub message: String,
    /// How to fix it, shown under `--fix-hints`.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.check, self.message)
    }
}

/// A parsed allow comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The check id being allowed.
    pub check: String,
    /// Line the comment sits on.
    pub line: usize,
    /// Last line of the comment block: the justification may wrap over
    /// consecutive `//` lines, and the allow covers through `end + 1`.
    pub end: usize,
    /// Whether it covers the whole file.
    pub file_scope: bool,
    /// The justification text (may be empty — then the allow itself is
    /// a finding).
    pub justification: String,
    /// Set by the engine when the allow suppressed at least one finding.
    pub used: std::cell::Cell<bool>,
}

/// One source file: its path, text, token stream, and derived facts the
/// checks share.
pub struct SourceFile {
    /// Path as printed in findings (scan-root relative).
    pub rel: String,
    /// The raw text.
    pub text: String,
    /// The token stream from [`lexer::lex`].
    pub toks: Vec<Tok>,
    /// Per-line flag: true when the line sits inside a `#[cfg(test)]`
    /// item (index 0 unused; lines are 1-based).
    pub test_lines: Vec<bool>,
    /// The crate-ish grouping key: `crates/dist/src/x.rs` → `dist`.
    pub group: String,
    /// Allow comments parsed from this file.
    pub allows: Vec<Allow>,
    /// The parsed syntax tree; `None` when [`ast::parse`] failed
    /// structurally (the reason is in [`SourceFile::parse_err`]). The
    /// AST-based checks skip such files, so the CI self-scan asserts
    /// this never happens on workspace sources.
    pub ast: Option<ast::File>,
    /// Why [`SourceFile::ast`] is `None`, if it is.
    pub parse_err: Option<String>,
}

impl SourceFile {
    /// Builds a source file from text, deriving tokens, test regions,
    /// group and allows.
    pub fn new(rel: String, text: String) -> Self {
        let toks = lexer::lex(&text);
        let lines = text.lines().count() + 2;
        let test_lines = mark_test_lines(&toks, lines);
        let group = group_of(&rel);
        let allows = parse_allows(&toks);
        let (ast, parse_err) = match ast::parse(&toks) {
            Ok(file) => (Some(file), None),
            Err(e) => (None, Some(e)),
        };
        Self { rel, text, toks, test_lines, group, allows, ast, parse_err }
    }

    /// Whether the given 1-based line is inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// Whether this file looks like an integration-test or bench target
    /// (under a `tests/`, `benches/` or `examples/` directory), where
    /// panic-style assertions are idiomatic.
    pub fn is_test_target(&self) -> bool {
        self.rel.split('/').any(|c| c == "tests" || c == "benches" || c == "examples")
    }
}

/// Everything one scan sees: Rust sources plus the doc files some
/// checks cross-reference (README, CI scripts and workflows).
pub struct Workspace {
    /// All lexed `.rs` files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Non-Rust docs: `(rel path, text)` for README.md, `*.sh`, `*.yml`.
    pub docs: Vec<(String, String)>,
}

impl Workspace {
    /// Loads every `.rs` file (and doc file) under `root`. Directories
    /// named `target`, `.git` and — below the root only — `fixtures`
    /// are skipped, so a workspace scan never lints the seeded fixture
    /// violations while an explicit fixture scan still works.
    ///
    /// # Errors
    ///
    /// Any filesystem failure.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        let mut docs = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<io::Result<Vec<_>>>()?;
            entries.sort_by_key(std::fs::DirEntry::path);
            for entry in entries {
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if path.is_dir() {
                    if name == "target" || name == ".git" || (name == "fixtures" && dir != *root) {
                        continue;
                    }
                    stack.push(path);
                } else if name.ends_with(".rs") {
                    let rel = rel_to(root, &path);
                    files.push(SourceFile::new(rel, std::fs::read_to_string(&path)?));
                } else if name == "README.md" || name.ends_with(".sh") || name.ends_with(".yml") {
                    docs.push((rel_to(root, &path), std::fs::read_to_string(&path)?));
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        docs.sort();
        Ok(Self { files, docs })
    }

    /// The files of one crate group, in path order.
    pub fn group<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SourceFile> + 'a {
        self.files.iter().filter(move |f| f.group == name)
    }

    /// All distinct group names, sorted.
    pub fn group_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.files.iter().map(|f| f.group.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// The first file whose path ends with `suffix` (e.g. `proto.rs`).
    pub fn file_named(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == suffix || f.rel.ends_with(&format!("/{suffix}")))
    }
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` table — how the CLI drivers find the scan
/// root when invoked from a subdirectory.
pub fn workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn rel_to(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    if root != Path::new(".") && root != Path::new("") {
        s.push_str(&root.to_string_lossy());
        if !s.ends_with('/') {
            s.push('/');
        }
    }
    s + &rel.to_string_lossy().replace('\\', "/")
}

/// The crate-ish grouping key of a path: the component before `src` if
/// there is one (`crates/dist/src/x.rs` → `dist`), otherwise the file's
/// parent directory name. Integration-test and bench directories group
/// under their own name, never under the crate.
fn group_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    for (i, p) in parts.iter().enumerate() {
        if *p == "src" && i > 0 {
            return parts[i - 1].to_string();
        }
    }
    if parts.len() >= 2 {
        parts[parts.len() - 2].to_string()
    } else {
        "root".to_string()
    }
}

/// Marks the line span of every `#[cfg(test)]` item. The span runs from
/// the attribute to the end of the item it attaches to: the matching
/// close of the first `{` after the attribute, or the first `;` if one
/// comes first (e.g. `#[cfg(test)] use …;`).
fn mark_test_lines(toks: &[Tok], nlines: usize) -> Vec<bool> {
    let mut flags = vec![false; nlines + 1];
    let code: Vec<(usize, &Tok)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Kind::LineComment | Kind::BlockComment))
        .collect();
    let mut i = 0;
    while i + 4 < code.len() {
        let window = &code[i..];
        let is_cfg_test = window[0].1.is_punct('#')
            && window[1].1.is_punct('[')
            && window[2].1.is_ident("cfg")
            && window[3].1.is_punct('(')
            && window[4].1.is_ident("test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the attribute's closing bracket, then the item extent.
        let mut j = i + 2;
        let mut depth = 1; // the `[`
        while j < code.len() && depth > 0 {
            j += 1;
            if let Some((_, t)) = code.get(j) {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                }
            }
        }
        let start_line = window[0].1.line;
        let mut end_line = start_line;
        let mut k = j + 1;
        let mut brace = 0usize;
        let mut entered = false;
        while let Some((_, t)) = code.get(k) {
            end_line = t.line;
            if t.is_punct('{') {
                brace += 1;
                entered = true;
            } else if t.is_punct('}') {
                brace = brace.saturating_sub(1);
                if entered && brace == 0 {
                    break;
                }
            } else if t.is_punct(';') && !entered {
                break;
            }
            k += 1;
        }
        for flag in &mut flags[start_line..=end_line.min(nlines)] {
            *flag = true;
        }
        i = k.max(i + 1);
    }
    flags
}

/// Parses `// analysis: allow(check[, file]): justification` comments.
/// A justification that wraps over consecutive `//` lines extends the
/// allow's `end` through the last comment line of the block.
fn parse_allows(toks: &[Tok]) -> Vec<Allow> {
    let comment_lines: std::collections::BTreeSet<usize> =
        toks.iter().filter(|t| t.kind == Kind::LineComment).map(|t| t.line).collect();
    let mut allows = Vec::new();
    for t in toks {
        if t.kind != Kind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("analysis:") else { continue };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let inside = &rest[..close];
        let after = rest[close + 1..].trim();
        let justification =
            after.strip_prefix(':').map(|j| j.trim().to_string()).unwrap_or_default();
        let mut parts = inside.split(',').map(str::trim);
        let check = parts.next().unwrap_or("").to_string();
        let file_scope = parts.any(|p| p == "file");
        let mut end = t.line;
        while comment_lines.contains(&(end + 1)) {
            end += 1;
        }
        allows.push(Allow {
            check,
            line: t.line,
            end,
            file_scope,
            justification,
            used: std::cell::Cell::new(false),
        });
    }
    allows
}

/// A single analysis pass over a [`Workspace`].
pub trait Check {
    /// Stable id used in findings and allow comments.
    fn id(&self) -> &'static str;
    /// One-line description for the check catalog.
    fn describe(&self) -> &'static str;
    /// Runs the check, appending findings to `out`.
    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Runs every registered check over the workspace, applies allow
/// comments, and reports allow-hygiene problems (missing justification,
/// unused allows, unknown check ids). Findings come back sorted by
/// file, line, then check id.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let all = checks::all();
    let mut raw = Vec::new();
    for check in &all {
        check.run(ws, &mut raw);
    }
    let known: Vec<&str> = all.iter().map(|c| c.id()).collect();
    let mut findings = Vec::new();
    let by_file: BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.rel.as_str(), f)).collect();
    for finding in raw {
        let suppressed = by_file.get(finding.file.as_str()).is_some_and(|f| {
            f.allows.iter().any(|a| {
                let hit = a.check == finding.check
                    && !a.justification.is_empty()
                    && (a.file_scope || (finding.line >= a.line && finding.line <= a.end + 1));
                if hit {
                    a.used.set(true);
                }
                hit
            })
        });
        if !suppressed {
            findings.push(finding);
        }
    }
    for f in &ws.files {
        for a in &f.allows {
            if !known.contains(&a.check.as_str()) {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: a.line,
                    check: "allow",
                    message: format!("allow names unknown check `{}`", a.check),
                    hint: format!("known checks: {}", known.join(", ")),
                });
            } else if a.justification.is_empty() {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: a.line,
                    check: "allow",
                    message: format!("allow({}) without a justification", a.check),
                    hint: "write `// analysis: allow(check): why this is sound`".to_string(),
                });
            } else if !a.used.get() {
                findings.push(Finding {
                    file: f.rel.clone(),
                    line: a.line,
                    check: "allow",
                    message: format!("allow({}) suppresses no finding", a.check),
                    hint: "delete the stale allow comment".to_string(),
                });
            }
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check).cmp(&(b.file.as_str(), b.line, b.check))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_follow_src_layout() {
        assert_eq!(group_of("crates/dist/src/coordinator.rs"), "dist");
        assert_eq!(group_of("crates/compat/rand/src/lib.rs"), "rand");
        assert_eq!(group_of("tests/src/lib.rs"), "tests");
        assert_eq!(group_of("crates/telemetry/tests/proptests.rs"), "tests");
        assert_eq!(group_of("bad/lockmesh/src/deadlock.rs"), "lockmesh");
    }

    #[test]
    fn cfg_test_regions_cover_the_attached_item() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::new("crates/dist/src/x.rs".into(), src.into());
        assert!(!f.in_test(1));
        assert!(f.in_test(2));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn allow_comments_parse_scope_and_justification() {
        let src = "// analysis: allow(panic): bounded by the 64-round loop\n\
                   // analysis: allow(lock-order, file): single-threaded tool\n\
                   // analysis: allow(panic)\n";
        let f = SourceFile::new("x/src/a.rs".into(), src.into());
        assert_eq!(f.allows.len(), 3);
        assert_eq!(f.allows[0].check, "panic");
        assert!(!f.allows[0].file_scope);
        assert!(f.allows[0].justification.contains("64-round"));
        assert!(f.allows[1].file_scope);
        assert!(f.allows[2].justification.is_empty());
    }

    #[test]
    fn wrapped_allow_justification_extends_the_scope() {
        let src = "// analysis: allow(panic): the justification wraps\n\
                   // over two more comment lines before the\n\
                   // flagged call site\n\
                   x.expect(\"boom\");\n\
                   y.expect(\"not covered\");\n";
        let f = SourceFile::new("x/src/a.rs".into(), src.into());
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].line, 1);
        assert_eq!(f.allows[0].end, 3);
    }
}
