//! A small comment- and string-aware Rust lexer.
//!
//! The checks in this crate reason about token *sequences*, never raw
//! text, so a `.lock()` inside a string literal or a doc comment can
//! never produce a finding. The lexer handles the corners that break
//! naive scanners: raw strings with arbitrary `#` depth, nested block
//! comments, lifetimes vs char literals, raw identifiers (`r#match`),
//! and byte/raw-byte string prefixes. It does not aim to be a complete
//! Rust lexer — floats, integer suffixes and multi-character operators
//! are all tokenized loosely — because the checks only need identifier,
//! literal, comment and single-character punctuation boundaries to be
//! exact.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`fn`, `lock`, `state`).
    Ident,
    /// A raw identifier (`r#match`); [`Tok::text`] keeps the `r#`.
    RawIdent,
    /// A lifetime (`'a`) — *not* a char literal.
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A string literal of any flavor (`"s"`, `r#"s"#`, `b"s"`); the
    /// token text includes the quotes and prefixes.
    Str,
    /// A numeric literal (lexed loosely: digits, `_`, `.`, hex letters).
    Num,
    /// A `//` comment, including doc comments, without the newline.
    LineComment,
    /// A `/* ... */` comment, nesting included.
    BlockComment,
    /// Any other single character (`{`, `.`, `=`, …).
    Punct,
}

/// One token: its kind, text, and 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// The lexeme kind.
    pub kind: Kind,
    /// The token text as it appears in the source.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is an identifier with the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// The unquoted value of a plain or raw string literal; `None` for
    /// other kinds. Escapes are left verbatim — the checks only match
    /// simple names, which never contain escapes.
    pub fn str_value(&self) -> Option<&str> {
        if self.kind != Kind::Str {
            return None;
        }
        let s = self.text.trim_start_matches(['b', 'r']).trim_start_matches('#');
        let s = s.strip_prefix('"')?;
        let s = s.trim_end_matches('#');
        Some(s.strip_suffix('"').unwrap_or(s))
    }
}

/// Lexes `src` into a token stream. Unterminated literals and comments
/// are tolerated (the rest of the file becomes one token) — the checks
/// run on code that rustc may not have accepted yet.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        let mut toks = Vec::new();
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let tok = match c {
                ch if ch.is_whitespace() => {
                    self.bump();
                    continue;
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '\'' => self.lifetime_or_char(),
                '"' => self.string('"'),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(),
                ch if ch == '_' || ch.is_ascii_alphabetic() => self.ident(),
                ch if ch.is_ascii_digit() => self.number(),
                ch => {
                    self.bump();
                    Tok { kind: Kind::Punct, text: ch.to_string(), line }
                }
            };
            toks.push(tok);
        }
        toks
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn take_while(&mut self, text: &mut String, f: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !f(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
    }

    fn line_comment(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        self.take_while(&mut text, |c| c != '\n');
        Tok { kind: Kind::LineComment, text, line }
    }

    fn block_comment(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        Tok { kind: Kind::BlockComment, text, line }
    }

    /// `'a` (lifetime) vs `'a'` (char). A quote is a lifetime when an
    /// identifier follows and the character after it is not another
    /// quote; everything else is a char literal, escapes included.
    fn lifetime_or_char(&mut self) -> Tok {
        let line = self.line;
        let next = self.peek(1);
        let is_ident_start = next.is_some_and(|c| c == '_' || c.is_ascii_alphabetic());
        if is_ident_start {
            // Find where the identifier run ends: 'abc' is a char-like
            // literal only if a closing quote immediately follows.
            let mut end = 2;
            while self.peek(end).is_some_and(|c| c == '_' || c.is_ascii_alphanumeric()) {
                end += 1;
            }
            if self.peek(end) != Some('\'') {
                let mut text = String::from("'");
                self.bump();
                self.take_while(&mut text, |c| c == '_' || c.is_ascii_alphanumeric());
                return Tok { kind: Kind::Lifetime, text, line };
            }
        }
        // Char literal: consume until the closing quote, honoring `\`.
        let mut text = String::new();
        text.push('\'');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '\'' {
                break;
            }
        }
        Tok { kind: Kind::Char, text, line }
    }

    /// Whether the `r`/`b` at the cursor starts a literal rather than an
    /// identifier: `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`, `br#"`.
    fn raw_or_byte_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (Some('r'), Some('"' | '#')) => true,
            (Some('b'), Some('"' | '\'')) => true,
            (Some('b'), Some('r')) => matches!(self.peek(2), Some('"' | '#')),
            _ => false,
        }
    }

    fn prefixed_literal(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        // Consume the prefix letters.
        while let Some(c) = self.peek(0) {
            if c == 'r' || c == 'b' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let raw = text.contains('r');
        match self.peek(0) {
            Some('#') if raw => {
                // Raw string — or a raw identifier (`r#ident`).
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) != Some('"') {
                    // r#ident
                    text.push('#');
                    self.bump();
                    self.take_while(&mut text, |c| c == '_' || c.is_ascii_alphanumeric());
                    return Tok { kind: Kind::RawIdent, text, line };
                }
                for _ in 0..hashes {
                    text.push('#');
                    self.bump();
                }
                text.push('"');
                self.bump();
                self.raw_string_body(&mut text, hashes);
                Tok { kind: Kind::Str, text, line }
            }
            Some('"') if raw => {
                text.push('"');
                self.bump();
                self.raw_string_body(&mut text, 0);
                Tok { kind: Kind::Str, text, line }
            }
            Some('"') => {
                self.bump();
                let inner = self.string_body();
                Tok { kind: Kind::Str, text: text + "\"" + &inner, line }
            }
            Some('\'') => {
                let mut tok = self.lifetime_or_char();
                tok.kind = Kind::Char;
                tok.text = text + &tok.text;
                tok.line = line;
                tok
            }
            _ => {
                // Plain identifier that merely starts with r/b.
                self.take_while(&mut text, |c| c == '_' || c.is_ascii_alphanumeric());
                Tok { kind: Kind::Ident, text, line }
            }
        }
    }

    /// Body of a raw string already opened with `hashes` hashes; appends
    /// through the closing delimiter.
    fn raw_string_body(&mut self, text: &mut String, hashes: usize) {
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closed = (0..hashes).all(|i| self.peek(1 + i) == Some('#'));
                text.push('"');
                self.bump();
                if closed {
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    return;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
    }

    fn string(&mut self, quote: char) -> Tok {
        let line = self.line;
        self.bump();
        let body = self.string_body();
        Tok { kind: Kind::Str, text: quote.to_string() + &body, line }
    }

    /// Consumes an escaped string body after the opening quote; returns
    /// the body including the closing quote.
    fn string_body(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                break;
            }
        }
        text
    }

    fn ident(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        self.take_while(&mut text, |c| c == '_' || c.is_ascii_alphanumeric());
        Tok { kind: Kind::Ident, text, line }
    }

    fn number(&mut self) -> Tok {
        let line = self.line;
        let mut text = String::new();
        self.take_while(&mut text, |c| c.is_ascii_alphanumeric() || c == '_');
        Tok { kind: Kind::Num, text, line }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("fn lock(&self) -> Guard { self.state.lock() }");
        assert!(toks.contains(&(Kind::Ident, "lock".into())));
        assert!(toks.contains(&(Kind::Punct, "{".into())));
    }

    #[test]
    fn line_and_nested_block_comments_are_single_tokens() {
        let toks = kinds("a // x.lock()\nb /* outer /* inner */ still */ c");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Ident).count(), 3, "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == Kind::LineComment && t.contains("x.lock()")));
        assert!(toks.iter().any(|(k, t)| *k == Kind::BlockComment && t.contains("inner")));
    }

    #[test]
    fn raw_strings_with_hashes_swallow_quotes_and_locks() {
        let toks = kinds(r##"let s = r#"a "quoted" .lock() body"# ; done"##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains(".lock()"));
        assert!(toks.contains(&(Kind::Ident, "done".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
    }

    #[test]
    fn raw_identifiers_lex_as_one_token() {
        let toks = kinds("let r#match = r#fn; r#\"raw\"#;");
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::RawIdent).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 1);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b2 = br#"raw .lock()"#; let c = b'x';"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 1);
    }

    #[test]
    fn string_escapes_do_not_end_the_literal() {
        let toks = kinds(r#"let s = "a \" .lock() \\"; x"#);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains(".lock()"));
        assert!(toks.contains(&(Kind::Ident, "x".into())));
    }

    #[test]
    fn str_value_unquotes_plain_and_raw() {
        let t = &lex(r#""dx_seeds_total""#)[0];
        assert_eq!(t.str_value(), Some("dx_seeds_total"));
        let t = &lex(r##"r#"body"#"##)[0];
        assert_eq!(t.str_value(), Some("body"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("a\n/* x\ny */\nb");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
