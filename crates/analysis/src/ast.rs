//! A lightweight recursive-descent parser over the [`crate::lexer`]
//! token stream.
//!
//! The produced AST is deliberately small: items (functions with
//! signatures, structs with field types, impls, consts), blocks,
//! statements, `let` bindings with their bound names, and expressions
//! down to method-call chains. That is exactly the granularity the
//! dataflow checks need — guard binding and scope, callee resolution by
//! path, receiver resolution through field accesses — and nothing more.
//! Types are captured as normalized strings (`Mutex<State>`,
//! `&mut TcpStream`), not parsed.
//!
//! The parser is *total* over real Rust: constructs it does not model
//! (trait bounds, enum bodies, attribute arguments) are skipped with
//! balanced-delimiter matching, and an expression token it cannot place
//! becomes an [`Expr::Other`] atom. It returns `Err` only on structural
//! failure — unbalanced delimiters or a cursor that stops advancing —
//! which the CI self-scan (`dx-analysis --parse-stats`) asserts never
//! happens on workspace sources, so no file silently degrades the
//! AST-based checks back to token-level vision.

use crate::lexer::{Kind, Tok};

/// A parsed source file: its top-level items.
#[derive(Debug, Default)]
pub struct File {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

/// One item. Items the checks never look inside parse as [`Item::Other`].
#[derive(Debug)]
pub enum Item {
    /// A function definition (or bodyless trait-method signature).
    Fn(FnDef),
    /// A struct with named fields (tuple/unit structs keep no fields).
    Struct(StructDef),
    /// An `impl` block; `self_ty` is the implementing type's name.
    Impl(ImplDef),
    /// An inline module.
    Mod {
        /// Module name.
        name: String,
        /// Line of the `mod` keyword.
        line: usize,
        /// The module's items.
        items: Vec<Item>,
    },
    /// A `const` or `static` with its initializer expression.
    Const(ConstDef),
    /// Anything else (enums, traits' non-fn pieces, uses, macros…).
    Other {
        /// Line where the item starts.
        line: usize,
    },
}

/// A `const NAME: Ty = expr;` (or `static`) item.
#[derive(Debug)]
pub struct ConstDef {
    /// The constant's name.
    pub name: String,
    /// Line of the name.
    pub line: usize,
    /// Normalized type text.
    pub ty: String,
    /// The initializer, if it parsed.
    pub value: Option<Expr>,
}

/// A struct definition with its named fields.
#[derive(Debug)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// Line of the name.
    pub line: usize,
    /// Named fields with normalized type text.
    pub fields: Vec<FieldDef>,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Normalized type text (`Mutex<State>`).
    pub ty: String,
    /// Line of the field name.
    pub line: usize,
}

/// An `impl` block and the items inside it.
#[derive(Debug)]
pub struct ImplDef {
    /// The implementing type's name (`impl Trait for Name` → `Name`).
    pub self_ty: String,
    /// Line of the `impl` keyword.
    pub line: usize,
    /// The impl's items (methods, assoc consts).
    pub items: Vec<Item>,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Line of the name.
    pub line: usize,
    /// Parameters: `self` appears as a param named `self`.
    pub params: Vec<Param>,
    /// Normalized return-type text; empty for `()`.
    pub ret: String,
    /// The body; `None` for trait-method declarations.
    pub body: Option<Block>,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// The binding name (patterns collapse to their first binding).
    pub name: String,
    /// Normalized type text.
    pub ty: String,
}

/// A `{ … }` block of statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Line of the opening brace.
    pub line: usize,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// A `let` binding.
    Let(LetStmt),
    /// An expression statement (trailing `;` or tail position).
    Expr(Expr),
    /// A nested item (`fn` inside a body, a `use`, …).
    Item(Item),
}

/// A `let` statement.
#[derive(Debug)]
pub struct LetStmt {
    /// Names the pattern binds (`let (a, b) = …` → `[a, b]`).
    pub names: Vec<String>,
    /// Normalized ascribed type text; empty if none.
    pub ty: String,
    /// The initializer, if present.
    pub init: Option<Expr>,
    /// The diverging block of a `let … else { … }`.
    pub else_block: Option<Block>,
    /// Line of the `let`.
    pub line: usize,
}

/// One `match` arm.
#[derive(Debug)]
pub struct Arm {
    /// Names the arm's pattern binds.
    pub names: Vec<String>,
    /// The `if` guard expression, if any.
    pub guard: Option<Box<Expr>>,
    /// The arm body.
    pub body: Box<Expr>,
    /// Line of the pattern.
    pub line: usize,
}

/// An expression, at method-chain granularity.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `a::b::c`, `self`, `Self`.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Line of the first segment.
        line: usize,
    },
    /// A literal (number, string, char); `text` is the source lexeme.
    Lit {
        /// The literal's source text (quotes/underscores included).
        text: String,
        /// Line of the literal.
        line: usize,
    },
    /// `callee(args)` where `callee` is any expression.
    Call {
        /// The called expression (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Line of the open paren.
        line: usize,
    },
    /// `recv.method(args)`.
    MethodCall {
        /// The receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments in order.
        args: Vec<Expr>,
        /// Line of the method name.
        line: usize,
    },
    /// `recv.field` (including tuple indices `x.0`).
    Field {
        /// The base expression.
        recv: Box<Expr>,
        /// Field name or tuple index.
        name: String,
        /// Line of the field name.
        line: usize,
    },
    /// `recv[index]`.
    Index {
        /// The indexed expression.
        recv: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
        /// Line of the open bracket.
        line: usize,
    },
    /// `expr?`.
    Try {
        /// The inner expression.
        inner: Box<Expr>,
    },
    /// A prefix-operator expression (`&x`, `*x`, `!x`, `-x`).
    Unary {
        /// The operand.
        inner: Box<Expr>,
    },
    /// `lhs op rhs` for any binary operator (including ranges).
    Binary {
        /// Operator text (`==`, `+`, `..`).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand (`Other` for open ranges).
        rhs: Box<Expr>,
    },
    /// `target = value` (and compound assignments).
    Assign {
        /// The assigned place.
        target: Box<Expr>,
        /// The value.
        value: Box<Expr>,
        /// Line of the `=`.
        line: usize,
    },
    /// A block expression.
    Block(Block),
    /// `if [let pat =] cond { … } [else …]`.
    If {
        /// Names bound by an `if let` pattern; empty for plain `if`.
        let_names: Vec<String>,
        /// The condition (scrutinee for `if let`).
        cond: Box<Expr>,
        /// The then-block.
        then: Block,
        /// The else branch: a `Block` or another `If`.
        alt: Option<Box<Expr>>,
        /// Line of the `if`.
        line: usize,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The arms.
        arms: Vec<Arm>,
        /// Line of the `match`.
        line: usize,
    },
    /// `while [let pat =] cond { … }`.
    While {
        /// Names bound by a `while let` pattern.
        let_names: Vec<String>,
        /// The condition (scrutinee for `while let`).
        cond: Box<Expr>,
        /// The loop body.
        body: Block,
        /// Line of the `while`.
        line: usize,
    },
    /// `loop { … }`.
    Loop {
        /// The loop body.
        body: Block,
        /// Line of the `loop`.
        line: usize,
    },
    /// `for pat in iter { … }`.
    For {
        /// Names the loop pattern binds.
        names: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// The loop body.
        body: Block,
        /// Line of the `for`.
        line: usize,
    },
    /// `|params| body` (and `move` closures).
    Closure {
        /// Parameter binding names.
        params: Vec<String>,
        /// The body expression.
        body: Box<Expr>,
        /// Line of the opening `|`.
        line: usize,
    },
    /// `name!(args)` / `name![…]` / `name!{…}`; arguments are parsed
    /// loosely as a comma-separated expression list.
    Macro {
        /// The macro path.
        path: Vec<String>,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
        /// Line of the macro name.
        line: usize,
    },
    /// `Path { field: expr, … }`.
    StructLit {
        /// The struct path.
        path: Vec<String>,
        /// `(field name, value)` pairs; `..base` becomes `("..", base)`.
        fields: Vec<(String, Expr)>,
        /// Line of the path.
        line: usize,
    },
    /// `(a, b)` tuples and parenthesized expressions.
    Tuple {
        /// The elements.
        items: Vec<Expr>,
        /// Line of the open paren.
        line: usize,
    },
    /// `[a, b]` arrays (and `[x; n]` repeats).
    Array {
        /// The elements.
        items: Vec<Expr>,
        /// Line of the open bracket.
        line: usize,
    },
    /// `return` / `break` / `continue`, with an optional value.
    Ret {
        /// Which keyword (`return`, `break`, `continue`).
        kind: String,
        /// The carried value, if any.
        inner: Option<Box<Expr>>,
        /// Line of the keyword.
        line: usize,
    },
    /// A token the parser could not place; never an error.
    Other {
        /// Line of the token.
        line: usize,
    },
}

impl Expr {
    /// The 1-based source line this expression starts on.
    pub fn line(&self) -> usize {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Assign { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::For { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Macro { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Ret { line, .. }
            | Expr::Other { line } => *line,
            Expr::Try { inner } | Expr::Unary { inner } => inner.line(),
            Expr::Binary { lhs, .. } => lhs.line(),
            Expr::Block(b) => b.line,
        }
    }
}

/// Parses a token stream into a [`File`].
///
/// # Errors
///
/// Only on structural failure: unbalanced delimiters, or an internal
/// cursor that stopped advancing. Locally unmodeled syntax degrades to
/// [`Expr::Other`] / [`Item::Other`] instead.
pub fn parse(toks: &[Tok]) -> Result<File, String> {
    let code: Vec<&Tok> =
        toks.iter().filter(|t| !matches!(t.kind, Kind::LineComment | Kind::BlockComment)).collect();
    let mut p = Parser { toks: code, pos: 0 };
    let end = p.toks.len();
    let items = p.parse_items(end)?;
    Ok(File { items })
}

/// Walks every function in a file, impls and modules included, calling
/// `f` with the enclosing impl type (if any) and the definition.
pub fn for_each_fn<'a>(file: &'a File, f: &mut impl FnMut(Option<&'a str>, &'a FnDef)) {
    fn walk<'a>(
        items: &'a [Item],
        self_ty: Option<&'a str>,
        f: &mut impl FnMut(Option<&'a str>, &'a FnDef),
    ) {
        for item in items {
            match item {
                Item::Fn(d) => f(self_ty, d),
                Item::Impl(i) => walk(&i.items, Some(&i.self_ty), f),
                Item::Mod { items, .. } => walk(items, self_ty, f),
                _ => {}
            }
        }
    }
    walk(&file.items, None, f);
}

/// Walks every struct definition in a file.
pub fn for_each_struct<'a>(file: &'a File, f: &mut impl FnMut(&'a StructDef)) {
    fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a StructDef)) {
        for item in items {
            match item {
                Item::Struct(s) => f(s),
                Item::Impl(i) => walk(&i.items, f),
                Item::Mod { items, .. } => walk(items, f),
                _ => {}
            }
        }
    }
    walk(&file.items, f);
}

/// Walks every const/static definition in a file.
pub fn for_each_const<'a>(file: &'a File, f: &mut impl FnMut(&'a ConstDef)) {
    fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a ConstDef)) {
        for item in items {
            match item {
                Item::Const(c) => f(c),
                Item::Impl(i) => walk(&i.items, f),
                Item::Mod { items, .. } => walk(items, f),
                _ => {}
            }
        }
    }
    walk(&file.items, f);
}

/// Evaluates a small constant expression (`1 << 16`, `4 * 1024`).
pub fn eval_const(e: &Expr) -> Option<u64> {
    match e {
        Expr::Lit { text, .. } => parse_int(text),
        Expr::Tuple { items, .. } if items.len() == 1 => eval_const(&items[0]),
        Expr::Binary { op, lhs, rhs } => {
            let (a, b) = (eval_const(lhs)?, eval_const(rhs)?);
            match op.as_str() {
                "<<" => a.checked_shl(u32::try_from(b).ok()?),
                "*" => a.checked_mul(b),
                "+" => a.checked_add(b),
                "-" => a.checked_sub(b),
                "|" => Some(a | b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Parses an integer literal lexeme: underscores, `0x`/`0o`/`0b`
/// prefixes, and type suffixes (`1024usize`) are handled.
fn parse_int(text: &str) -> Option<u64> {
    let s = text.replace('_', "");
    let (radix, digits) = if let Some(d) = s.strip_prefix("0x") {
        (16, d)
    } else if let Some(d) = s.strip_prefix("0o") {
        (8, d)
    } else if let Some(d) = s.strip_prefix("0b") {
        (2, d)
    } else {
        (10, s.as_str())
    };
    let digits = digits.trim_end_matches(|c: char| {
        c.is_ascii_alphabetic() && !(radix == 16 && c.is_ascii_hexdigit())
    });
    u64::from_str_radix(digits, radix).ok()
}

struct Parser<'a> {
    toks: Vec<&'a Tok>,
    pos: usize,
}

const ITEM_KEYWORDS: [&str; 12] = [
    "fn",
    "struct",
    "enum",
    "trait",
    "impl",
    "mod",
    "const",
    "static",
    "use",
    "type",
    "extern",
    "macro_rules",
];

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + ahead).copied()
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn line(&self) -> usize {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.peek(0);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips a balanced `(…)`, `[…]` or `{…}` starting at the cursor.
    fn skip_balanced(&mut self) -> Result<(), String> {
        let (open, close) = match self.peek(0) {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => {
                self.pos += 1;
                return Ok(());
            }
        };
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
        }
        Err(format!("unbalanced `{open}`"))
    }

    /// Skips `#[…]` / `#![…]` attributes and doc attributes.
    fn skip_attrs(&mut self) -> Result<(), String> {
        while self.at_punct('#') {
            self.pos += 1;
            self.eat_punct('!');
            if self.at_punct('[') {
                self.skip_balanced()?;
            }
        }
        Ok(())
    }

    /// Skips `pub`, `pub(crate)`, `pub(in …)`.
    fn skip_vis(&mut self) -> Result<(), String> {
        if self.at_ident("pub") {
            self.pos += 1;
            if self.at_punct('(') {
                self.skip_balanced()?;
            }
        }
        Ok(())
    }

    /// Skips a balanced `<…>` generics list; `->` inside does not close.
    fn skip_angles(&mut self) -> Result<(), String> {
        let mut depth = 0usize;
        let mut prev_dash = false;
        while let Some(t) = self.bump() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_dash {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                self.pos -= 1;
                self.skip_balanced()?;
            }
            prev_dash = t.is_punct('-');
        }
        Err("unbalanced `<`".into())
    }

    /// Collects type tokens until one of `stops` at depth 0, returning
    /// normalized text. Angles, parens and brackets nest; `->` never
    /// closes an angle.
    fn collect_type(&mut self, stops: &[char], stop_idents: &[&str]) -> Result<String, String> {
        let mut parts: Vec<String> = Vec::new();
        let mut angle = 0usize;
        let mut paren = 0usize;
        let mut prev_dash = false;
        while let Some(t) = self.peek(0) {
            if angle == 0 && paren == 0 {
                if t.kind == Kind::Punct && stops.iter().any(|c| t.is_punct(*c)) {
                    break;
                }
                if t.kind == Kind::Ident && stop_idents.iter().any(|s| t.is_ident(s)) {
                    break;
                }
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !prev_dash {
                if angle == 0 {
                    break;
                }
                angle -= 1;
            } else if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                if paren == 0 {
                    break;
                }
                paren -= 1;
            }
            prev_dash = t.is_punct('-');
            parts.push(t.text.clone());
            self.pos += 1;
        }
        Ok(join_ty(&parts))
    }

    // -----------------------------------------------------------------
    // Items.

    fn parse_items(&mut self, end: usize) -> Result<Vec<Item>, String> {
        let mut items = Vec::new();
        while self.pos < end && self.peek(0).is_some() {
            if self.at_punct('}') {
                break;
            }
            let before = self.pos;
            self.skip_attrs()?;
            self.skip_vis()?;
            if self.at_ident("unsafe") || self.at_ident("default") {
                self.pos += 1;
            }
            let line = self.line();
            match self.peek(0) {
                Some(t) if t.is_ident("fn") => items.push(Item::Fn(self.parse_fn()?)),
                Some(t) if t.is_ident("struct") => items.push(self.parse_struct()?),
                Some(t) if t.is_ident("impl") => items.push(self.parse_impl()?),
                Some(t) if t.is_ident("mod") => items.push(self.parse_mod()?),
                Some(t) if t.is_ident("const") || t.is_ident("static") => {
                    items.push(self.parse_const()?);
                }
                Some(t)
                    if t.is_ident("enum")
                        || t.is_ident("trait")
                        || t.is_ident("union")
                        || t.is_ident("macro_rules") =>
                {
                    let is_trait = t.is_ident("trait");
                    self.pos += 1;
                    self.eat_punct('!'); // macro_rules!
                                         // Name, generics, bounds — skip to the body or `;`.
                    while let Some(t) = self.peek(0) {
                        if t.is_punct('{') || t.is_punct(';') {
                            break;
                        }
                        if t.is_punct('<') {
                            self.skip_angles()?;
                        } else {
                            self.pos += 1;
                        }
                    }
                    if self.at_punct('{') {
                        if is_trait {
                            // Parse trait bodies for their fn signatures.
                            self.pos += 1;
                            let inner = self.parse_items(self.toks.len())?;
                            self.eat_punct('}');
                            items.push(Item::Mod { name: String::new(), line, items: inner });
                        } else {
                            self.skip_balanced()?;
                            items.push(Item::Other { line });
                        }
                    } else {
                        self.eat_punct(';');
                        items.push(Item::Other { line });
                    }
                }
                Some(t) if t.is_ident("use") || t.is_ident("extern") || t.is_ident("type") => {
                    // Skip to `;` (brace groups in `use a::{b, c};` nest).
                    while let Some(t) = self.peek(0) {
                        if t.is_punct(';') {
                            self.pos += 1;
                            break;
                        }
                        if t.is_punct('{') {
                            self.skip_balanced()?;
                        } else {
                            self.pos += 1;
                        }
                    }
                    items.push(Item::Other { line });
                }
                Some(_) => {
                    // Not an item start we model; consume one token.
                    self.pos += 1;
                    items.push(Item::Other { line });
                }
                None => break,
            }
            if self.pos == before {
                return Err(format!("parser stuck at item level (line {line})"));
            }
        }
        Ok(items)
    }

    fn parse_fn(&mut self) -> Result<FnDef, String> {
        self.pos += 1; // `fn`
        let (name, line) = match self.peek(0) {
            Some(t) if matches!(t.kind, Kind::Ident | Kind::RawIdent) => {
                self.pos += 1;
                (t.text.trim_start_matches("r#").to_string(), t.line)
            }
            _ => (String::new(), self.line()),
        };
        if self.at_punct('<') {
            self.skip_angles()?;
        }
        let mut params = Vec::new();
        if self.at_punct('(') {
            self.pos += 1;
            while let Some(t) = self.peek(0) {
                if t.is_punct(')') {
                    self.pos += 1;
                    break;
                }
                self.skip_attrs()?;
                // Pattern part: take idents until `:` / `,` / `)`.
                let mut pname = String::new();
                let mut is_self = false;
                while let Some(t) = self.peek(0) {
                    if t.is_punct(':') || t.is_punct(',') || t.is_punct(')') {
                        break;
                    }
                    if t.is_ident("self") {
                        is_self = true;
                        pname = "self".into();
                    } else if t.kind == Kind::Ident
                        && !t.is_ident("mut")
                        && !t.is_ident("ref")
                        && pname.is_empty()
                    {
                        pname = t.text.clone();
                    } else if t.is_punct('(') || t.is_punct('[') {
                        self.skip_balanced()?;
                        continue;
                    }
                    self.pos += 1;
                }
                let ty = if self.eat_punct(':') {
                    self.collect_type(&[',', ')'], &[])?
                } else if is_self {
                    "Self".into()
                } else {
                    String::new()
                };
                if !pname.is_empty() {
                    params.push(Param { name: pname, ty });
                }
                self.eat_punct(',');
            }
        }
        let mut ret = String::new();
        if self.at_punct('-') && self.peek(1).is_some_and(|t| t.is_punct('>')) {
            self.pos += 2;
            ret = self.collect_type(&['{', ';'], &["where"])?;
        }
        if self.at_ident("where") {
            while let Some(t) = self.peek(0) {
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_punct('<') {
                    self.skip_angles()?;
                } else {
                    self.pos += 1;
                }
            }
        }
        let body = if self.at_punct('{') {
            Some(self.parse_block()?)
        } else {
            self.eat_punct(';');
            None
        };
        Ok(FnDef { name, line, params, ret, body })
    }

    fn parse_struct(&mut self) -> Result<Item, String> {
        self.pos += 1; // `struct`
        let (name, line) = match self.peek(0) {
            Some(t) if t.kind == Kind::Ident => {
                self.pos += 1;
                (t.text.clone(), t.line)
            }
            _ => (String::new(), self.line()),
        };
        if self.at_punct('<') {
            self.skip_angles()?;
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            // Tuple struct: skip fields and the trailing `;`.
            self.skip_balanced()?;
            self.eat_punct(';');
        } else if self.at_punct('{') {
            self.pos += 1;
            while let Some(t) = self.peek(0) {
                if t.is_punct('}') {
                    self.pos += 1;
                    break;
                }
                self.skip_attrs()?;
                self.skip_vis()?;
                let Some(ft) = self.peek(0) else { break };
                if ft.kind == Kind::Ident && self.peek(1).is_some_and(|t| t.is_punct(':')) {
                    let fname = ft.text.clone();
                    let fline = ft.line;
                    self.pos += 2;
                    let ty = self.collect_type(&[',', '}'], &[])?;
                    fields.push(FieldDef { name: fname, ty, line: fline });
                    self.eat_punct(',');
                } else {
                    self.pos += 1;
                }
            }
        } else {
            self.eat_punct(';');
        }
        Ok(Item::Struct(StructDef { name, line, fields }))
    }

    fn parse_impl(&mut self) -> Result<Item, String> {
        let line = self.line();
        self.pos += 1; // `impl`
        if self.at_punct('<') {
            self.skip_angles()?;
        }
        // `impl [Trait for] Type { … }`: the self type is the last path
        // ident before the body (generics skipped).
        let mut self_ty = String::new();
        while let Some(t) = self.peek(0) {
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                self.skip_angles()?;
            } else {
                if t.kind == Kind::Ident && !t.is_ident("for") && !t.is_ident("where") {
                    self_ty = t.text.clone();
                }
                self.pos += 1;
            }
        }
        let mut items = Vec::new();
        if self.at_punct('{') {
            self.pos += 1;
            items = self.parse_items(self.toks.len())?;
            self.eat_punct('}');
        } else {
            self.eat_punct(';');
        }
        Ok(Item::Impl(ImplDef { self_ty, line, items }))
    }

    fn parse_mod(&mut self) -> Result<Item, String> {
        let line = self.line();
        self.pos += 1; // `mod`
        let name = match self.peek(0) {
            Some(t) if t.kind == Kind::Ident => {
                self.pos += 1;
                t.text.clone()
            }
            _ => String::new(),
        };
        if self.at_punct('{') {
            self.pos += 1;
            let items = self.parse_items(self.toks.len())?;
            self.eat_punct('}');
            Ok(Item::Mod { name, line, items })
        } else {
            self.eat_punct(';');
            Ok(Item::Other { line })
        }
    }

    fn parse_const(&mut self) -> Result<Item, String> {
        self.pos += 1; // `const` / `static`
        if self.at_ident("mut") {
            self.pos += 1;
        }
        let (name, line) = match self.peek(0) {
            Some(t) if t.kind == Kind::Ident => {
                self.pos += 1;
                (t.text.clone(), t.line)
            }
            _ => (String::new(), self.line()),
        };
        let ty =
            if self.eat_punct(':') { self.collect_type(&['=', ';'], &[])? } else { String::new() };
        let value = if self.eat_punct('=') { Some(self.parse_expr(false)) } else { None };
        self.eat_punct(';');
        Ok(Item::Const(ConstDef { name, line, ty, value }))
    }

    // -----------------------------------------------------------------
    // Blocks and statements.

    fn parse_block(&mut self) -> Result<Block, String> {
        let line = self.line();
        if !self.eat_punct('{') {
            return Err(format!("expected `{{` at line {line}"));
        }
        let mut stmts = Vec::new();
        loop {
            while self.eat_punct(';') {}
            if self.at_punct('}') {
                self.pos += 1;
                break;
            }
            if self.peek(0).is_none() {
                return Err(format!("unclosed block from line {line}"));
            }
            let before = self.pos;
            self.skip_attrs()?;
            // Labeled loops: `'outer: loop { … }`.
            if self.peek(0).is_some_and(|t| t.kind == Kind::Lifetime)
                && self.peek(1).is_some_and(|t| t.is_punct(':'))
            {
                self.pos += 2;
            }
            if self.at_ident("let") {
                stmts.push(Stmt::Let(self.parse_let()?));
            } else if self.peek(0).is_some_and(|t| ITEM_KEYWORDS.iter().any(|k| t.is_ident(k)))
                || (self.at_ident("pub"))
                || (self.at_ident("unsafe") && self.peek(1).is_some_and(|t| t.is_ident("fn")))
            {
                let mut inner = self.parse_items_one()?;
                stmts.append(&mut inner);
            } else {
                let e = self.parse_expr(false);
                stmts.push(Stmt::Expr(e));
                self.eat_punct(';');
            }
            if self.pos == before {
                return Err(format!("parser stuck in block (line {})", self.line()));
            }
        }
        Ok(Block { stmts, line })
    }

    /// Parses exactly one item in statement position.
    fn parse_items_one(&mut self) -> Result<Vec<Stmt>, String> {
        let end = self.pos + 1; // parse_items consumes at least the one item
        let items = {
            let mut p = Parser { toks: std::mem::take(&mut self.toks), pos: self.pos };
            let _ = end;
            let result = p.parse_one_item();
            self.toks = p.toks;
            self.pos = p.pos;
            result?
        };
        Ok(items.into_iter().map(Stmt::Item).collect())
    }

    fn parse_one_item(&mut self) -> Result<Vec<Item>, String> {
        self.skip_vis()?;
        if self.at_ident("unsafe") {
            self.pos += 1;
        }
        let line = self.line();
        match self.peek(0) {
            Some(t) if t.is_ident("fn") => Ok(vec![Item::Fn(self.parse_fn()?)]),
            Some(t) if t.is_ident("struct") => Ok(vec![self.parse_struct()?]),
            Some(t) if t.is_ident("impl") => Ok(vec![self.parse_impl()?]),
            Some(t) if t.is_ident("mod") => Ok(vec![self.parse_mod()?]),
            Some(t) if t.is_ident("const") || t.is_ident("static") => Ok(vec![self.parse_const()?]),
            _ => {
                // `use`, `type`, `macro_rules`, … — skip to `;` or a
                // balanced body.
                while let Some(t) = self.peek(0) {
                    if t.is_punct(';') {
                        self.pos += 1;
                        break;
                    }
                    if t.is_punct('{') {
                        self.skip_balanced()?;
                        break;
                    }
                    self.pos += 1;
                }
                Ok(vec![Item::Other { line }])
            }
        }
    }

    fn parse_let(&mut self) -> Result<LetStmt, String> {
        let line = self.line();
        self.pos += 1; // `let`
        let names = self.parse_pattern(&[':', '=', ';'], &["else"]);
        let ty = if self.eat_punct(':') {
            self.collect_type(&['=', ';'], &["else"])?
        } else {
            String::new()
        };
        let init = if self.eat_punct('=') { Some(self.parse_expr(false)) } else { None };
        let else_block = if self.at_ident("else") {
            self.pos += 1;
            Some(self.parse_block()?)
        } else {
            None
        };
        self.eat_punct(';');
        Ok(LetStmt { names, ty, init, else_block, line })
    }

    /// Collects binding names from a pattern, stopping at any of `stops`
    /// (punct) or `stop_idents` at delimiter depth 0.
    fn parse_pattern(&mut self, stops: &[char], stop_idents: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if depth == 0 {
                if t.kind == Kind::Punct && stops.iter().any(|c| t.is_punct(*c)) {
                    break;
                }
                if t.kind == Kind::Ident && stop_idents.iter().any(|s| t.is_ident(s)) {
                    break;
                }
                // `=>` ends match-arm patterns even when `=` not listed.
                if t.is_punct('=') && self.peek(1).is_some_and(|n| n.is_punct('>')) {
                    break;
                }
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if t.kind == Kind::Ident {
                let skip_kw = matches!(t.text.as_str(), "ref" | "mut" | "box" | "_");
                let next = self.peek(1);
                // `Foo(..)`, `Foo{..}`, `mac!(..)` heads never bind.
                let is_ctor =
                    next.is_some_and(|n| n.is_punct('(') || n.is_punct('{') || n.is_punct('!'));
                // `a::b` path segments never bind; a *single* colon is a
                // struct-pattern field label (skip, the binding follows)
                // — except at depth 0, where it is a type ascription and
                // the ident before it is the binding.
                let follows_colons = next.is_some_and(|n| n.is_punct(':'))
                    && self.peek(2).is_some_and(|n| n.is_punct(':'));
                let follows_label =
                    next.is_some_and(|n| n.is_punct(':')) && !follows_colons && depth > 0;
                let after_colons = self.pos >= 2
                    && self.toks.get(self.pos - 1).is_some_and(|p| p.is_punct(':'))
                    && self.toks.get(self.pos - 2).is_some_and(|p| p.is_punct(':'));
                let binds = !skip_kw
                    && !is_ctor
                    && !follows_colons
                    && !follows_label
                    && !after_colons
                    && t.text.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                    && t.text != "self";
                if binds {
                    names.push(t.text.clone());
                }
            }
            self.pos += 1;
        }
        // Struct patterns: `Struct { field: binding }` — the ident after
        // the colon was skipped above (prev token is `:`), so re-walk is
        // unnecessary: shorthand fields and plain bindings are caught.
        names.dedup();
        names
    }

    // -----------------------------------------------------------------
    // Expressions.

    /// Parses one expression. `ns` (no-struct) forbids `Path { … }`
    /// struct literals, as in `if`/`while`/`match` head position.
    fn parse_expr(&mut self, ns: bool) -> Expr {
        let lhs = self.parse_prefix(ns);
        self.parse_binary(lhs, ns)
    }

    fn parse_binary(&mut self, mut lhs: Expr, ns: bool) -> Expr {
        loop {
            // `as Type` casts.
            if self.at_ident("as") {
                self.pos += 1;
                let _ = self.collect_type(
                    &[';', ',', ')', ']', '}', '=', '+', '-', '/', '%', '?', '{', '.'],
                    &["as", "else"],
                );
                continue;
            }
            let Some(op) = self.binary_op_at() else { break };
            if op == "=" {
                let line = self.line();
                self.pos += 1;
                let value = self.parse_expr(ns);
                lhs = Expr::Assign { target: Box::new(lhs), value: Box::new(value), line };
                continue;
            }
            self.pos += op.len();
            if op == ".." || op == "..=" {
                // Open-ended ranges: the rhs may be absent.
                if self.expr_ends_here(ns) {
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(Expr::Other { line: self.line() }),
                    };
                    continue;
                }
            }
            let rhs = self.parse_prefix(ns);
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        lhs
    }

    /// The binary operator starting at the cursor, if any. Multi-char
    /// operators are reassembled from single-char punct tokens.
    fn binary_op_at(&self) -> Option<String> {
        let t = self.peek(0)?;
        if t.kind != Kind::Punct {
            return None;
        }
        let c = t.text.chars().next()?;
        let n = self.peek(1).filter(|n| n.kind == Kind::Punct).map(|n| n.text.chars().next());
        let n = n.flatten();
        let op = match (c, n) {
            ('=', Some('>')) => return None, // match arm arrow
            ('=', Some('=')) => "==",
            ('=', _) => "=",
            ('!', Some('=')) => "!=",
            ('<', Some('=')) => "<=",
            ('>', Some('=')) => ">=",
            ('<', Some('<')) => "<<",
            ('>', Some('>')) => ">>",
            ('&', Some('&')) => "&&",
            ('|', Some('|')) => "||",
            ('.', Some('.')) => {
                if self.peek(2).is_some_and(|t| t.is_punct('=')) {
                    "..="
                } else {
                    ".."
                }
            }
            ('+' | '-' | '*' | '/' | '%' | '^' | '<' | '>' | '&' | '|', _) => {
                // Compound assignment `+=` parses as op then `=`; close
                // enough for dataflow purposes.
                match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '^' => "^",
                    '<' => "<",
                    '>' => ">",
                    '&' => "&",
                    '|' => "|",
                    _ => return None,
                }
            }
            _ => return None,
        };
        Some(op.to_string())
    }

    /// Whether the cursor sits where an expression cannot continue.
    fn expr_ends_here(&self, ns: bool) -> bool {
        match self.peek(0) {
            None => true,
            Some(t) => {
                t.is_punct(';')
                    || t.is_punct(',')
                    || t.is_punct(')')
                    || t.is_punct(']')
                    || t.is_punct('}')
                    || t.is_ident("else")
                    || (ns && t.is_punct('{'))
                    || (t.is_punct('=') && self.peek(1).is_some_and(|n| n.is_punct('>')))
            }
        }
    }

    fn parse_prefix(&mut self, ns: bool) -> Expr {
        // Prefix operators.
        if self.at_punct('&') || self.at_punct('*') || self.at_punct('!') || self.at_punct('-') {
            self.pos += 1;
            if self.at_ident("mut") {
                self.pos += 1;
            }
            let inner = self.parse_prefix(ns);
            return Expr::Unary { inner: Box::new(inner) };
        }
        if self.at_ident("move") {
            self.pos += 1;
        }
        let primary = self.parse_primary(ns);
        self.parse_postfix(primary)
    }

    fn parse_postfix(&mut self, mut e: Expr) -> Expr {
        loop {
            if self.at_punct('.') {
                // `..` is a range, not a postfix access.
                if self.peek(1).is_some_and(|t| t.is_punct('.')) {
                    break;
                }
                let Some(next) = self.peek(1) else { break };
                match next.kind {
                    Kind::Num => {
                        self.pos += 2;
                        e = Expr::Field {
                            recv: Box::new(e),
                            name: next.text.clone(),
                            line: next.line,
                        };
                    }
                    Kind::Ident | Kind::RawIdent => {
                        self.pos += 2;
                        let name = next.text.trim_start_matches("r#").to_string();
                        let line = next.line;
                        // Turbofish between name and args.
                        if self.at_punct(':')
                            && self.peek(1).is_some_and(|t| t.is_punct(':'))
                            && self.peek(2).is_some_and(|t| t.is_punct('<'))
                        {
                            self.pos += 2;
                            let _ = self.skip_angles();
                        }
                        if self.at_punct('(') {
                            let args = self.parse_args();
                            e = Expr::MethodCall { recv: Box::new(e), method: name, args, line };
                        } else {
                            e = Expr::Field { recv: Box::new(e), name, line };
                        }
                    }
                    _ => break,
                }
            } else if self.at_punct('?') {
                self.pos += 1;
                e = Expr::Try { inner: Box::new(e) };
            } else if self.at_punct('(') {
                let line = self.line();
                let args = self.parse_args();
                e = Expr::Call { callee: Box::new(e), args, line };
            } else if self.at_punct('[') {
                let line = self.line();
                self.pos += 1;
                let index = self.parse_expr(false);
                self.eat_punct(']');
                e = Expr::Index { recv: Box::new(e), index: Box::new(index), line };
            } else {
                break;
            }
        }
        e
    }

    /// Parses `(a, b, …)` starting at the open paren.
    fn parse_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct('(') {
            return args;
        }
        loop {
            if self.eat_punct(')') || self.peek(0).is_none() {
                break;
            }
            let before = self.pos;
            args.push(self.parse_expr(false));
            self.eat_punct(',');
            if self.pos == before {
                self.pos += 1; // never loop in place
            }
        }
        args
    }

    fn parse_primary(&mut self, ns: bool) -> Expr {
        let Some(t) = self.peek(0) else {
            return Expr::Other { line: 0 };
        };
        let line = t.line;
        match t.kind {
            Kind::Num | Kind::Str | Kind::Char => {
                self.pos += 1;
                Expr::Lit { text: t.text.clone(), line }
            }
            Kind::Lifetime | Kind::LineComment | Kind::BlockComment => {
                // Comments are stripped before parsing; a lifetime in
                // expression position is opaque.
                self.pos += 1;
                Expr::Other { line }
            }
            Kind::Punct => match t.text.chars().next() {
                Some('(') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.eat_punct(')') || self.peek(0).is_none() {
                            break;
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(false));
                        self.eat_punct(',');
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    Expr::Tuple { items, line }
                }
                Some('[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        if self.eat_punct(']') || self.peek(0).is_none() {
                            break;
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(false));
                        if !self.eat_punct(',') {
                            self.eat_punct(';');
                        }
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    Expr::Array { items, line }
                }
                Some('{') => match self.parse_block() {
                    Ok(b) => Expr::Block(b),
                    Err(_) => Expr::Other { line },
                },
                Some('|') => self.parse_closure(line),
                Some('.') => {
                    // Leading range `..x` — handled as Binary by caller;
                    // here it appears as primary in `..` / `..=expr`.
                    self.pos += 1;
                    if self.at_punct('.') {
                        self.pos += 1;
                        self.eat_punct('=');
                        if self.expr_ends_here(ns) {
                            return Expr::Other { line };
                        }
                        let rhs = self.parse_prefix(ns);
                        return Expr::Binary {
                            op: "..".into(),
                            lhs: Box::new(Expr::Other { line }),
                            rhs: Box::new(rhs),
                        };
                    }
                    Expr::Other { line }
                }
                _ => {
                    self.pos += 1;
                    Expr::Other { line }
                }
            },
            Kind::Ident | Kind::RawIdent => self.parse_ident_expr(ns, line),
        }
    }

    fn parse_closure(&mut self, line: usize) -> Expr {
        // `||` (empty params) or `|pat, …|`.
        self.pos += 1;
        let params = if self.at_punct('|') {
            self.pos += 1;
            Vec::new()
        } else {
            let names = self.parse_pattern(&['|'], &[]);
            self.eat_punct('|');
            names
        };
        if self.at_punct('-') && self.peek(1).is_some_and(|t| t.is_punct('>')) {
            self.pos += 2;
            let _ = self.collect_type(&['{'], &[]);
        }
        let body = self.parse_expr(false);
        Expr::Closure { params, body: Box::new(body), line }
    }

    fn parse_ident_expr(&mut self, ns: bool, line: usize) -> Expr {
        let t = self.peek(0).expect("caller checked");
        match t.text.as_str() {
            "if" => return self.parse_if(line),
            "match" => return self.parse_match(line),
            "while" => {
                self.pos += 1;
                let (let_names, cond) = self.parse_cond();
                let body = self.parse_block().unwrap_or_default();
                return Expr::While { let_names, cond: Box::new(cond), body, line };
            }
            "loop" => {
                self.pos += 1;
                let body = self.parse_block().unwrap_or_default();
                return Expr::Loop { body, line };
            }
            "for" => {
                self.pos += 1;
                let names = self.parse_pattern(&[], &["in"]);
                self.eat_ident("in");
                let iter = self.parse_expr(true);
                let body = self.parse_block().unwrap_or_default();
                return Expr::For { names, iter: Box::new(iter), body, line };
            }
            "unsafe" => {
                self.pos += 1;
                return match self.parse_block() {
                    Ok(b) => Expr::Block(b),
                    Err(_) => Expr::Other { line },
                };
            }
            "return" | "break" | "continue" => {
                let kind = t.text.clone();
                self.pos += 1;
                if kind == "break" && self.peek(0).is_some_and(|t| t.kind == Kind::Lifetime) {
                    self.pos += 1;
                }
                let inner = if self.expr_ends_here(ns) {
                    None
                } else {
                    Some(Box::new(self.parse_expr(ns)))
                };
                return Expr::Ret { kind, inner, line };
            }
            "move" => {
                self.pos += 1;
                if self.at_punct('|') {
                    return self.parse_closure(self.line());
                }
                return Expr::Other { line };
            }
            _ => {}
        }
        // A path: `a::b::c`, with turbofish segments skipped.
        let mut segs = vec![t.text.trim_start_matches("r#").to_string()];
        self.pos += 1;
        while self.at_punct(':') && self.peek(1).is_some_and(|n| n.is_punct(':')) {
            self.pos += 2;
            if self.at_punct('<') {
                let _ = self.skip_angles();
                continue;
            }
            match self.peek(0) {
                Some(n) if matches!(n.kind, Kind::Ident | Kind::RawIdent) => {
                    segs.push(n.text.trim_start_matches("r#").to_string());
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Macro invocation.
        if self.at_punct('!')
            && self.peek(1).is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
        {
            self.pos += 1;
            let args = self.parse_macro_args();
            return Expr::Macro { path: segs, args, line };
        }
        // Struct literal.
        if self.at_punct('{') && !ns {
            return self.parse_struct_lit(segs, line);
        }
        if self.at_punct('(') {
            let args = self.parse_args();
            return Expr::Call { callee: Box::new(Expr::Path { segs, line }), args, line };
        }
        Expr::Path { segs, line }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `(let_names, cond)` for `if`/`while` heads, handling `let pat =`.
    fn parse_cond(&mut self) -> (Vec<String>, Expr) {
        if self.at_ident("let") {
            self.pos += 1;
            let names = self.parse_pattern(&['='], &[]);
            self.eat_punct('=');
            (names, self.parse_expr(true))
        } else {
            (Vec::new(), self.parse_expr(true))
        }
    }

    fn parse_if(&mut self, line: usize) -> Expr {
        self.pos += 1; // `if`
        let (let_names, cond) = self.parse_cond();
        let then = self.parse_block().unwrap_or_default();
        let alt = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if(self.line())))
            } else {
                match self.parse_block() {
                    Ok(b) => Some(Box::new(Expr::Block(b))),
                    Err(_) => None,
                }
            }
        } else {
            None
        };
        Expr::If { let_names, cond: Box::new(cond), then, alt, line }
    }

    fn parse_match(&mut self, line: usize) -> Expr {
        self.pos += 1; // `match`
        let scrutinee = self.parse_expr(true);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            loop {
                while self.eat_punct(',') {}
                if self.eat_punct('}') || self.peek(0).is_none() {
                    break;
                }
                let before = self.pos;
                let _ = self.skip_attrs();
                self.eat_punct('|');
                let arm_line = self.line();
                let names = self.parse_pattern(&[], &["if"]);
                let guard =
                    if self.eat_ident("if") { Some(Box::new(self.parse_expr(true))) } else { None };
                // `=>`
                self.eat_punct('=');
                self.eat_punct('>');
                let body = self.parse_expr(false);
                arms.push(Arm { names, guard, body: Box::new(body), line: arm_line });
                if self.pos == before {
                    self.pos += 1;
                }
            }
        }
        Expr::Match { scrutinee: Box::new(scrutinee), arms, line }
    }

    fn parse_struct_lit(&mut self, path: Vec<String>, line: usize) -> Expr {
        self.pos += 1; // `{`
        let mut fields = Vec::new();
        loop {
            while self.eat_punct(',') {}
            if self.eat_punct('}') || self.peek(0).is_none() {
                break;
            }
            let before = self.pos;
            if self.at_punct('.') && self.peek(1).is_some_and(|t| t.is_punct('.')) {
                self.pos += 2;
                let base = self.parse_expr(false);
                fields.push(("..".to_string(), base));
            } else if let Some(ft) = self.peek(0) {
                if ft.kind == Kind::Ident {
                    let name = ft.text.clone();
                    self.pos += 1;
                    if self.eat_punct(':') {
                        fields.push((name, self.parse_expr(false)));
                    } else {
                        // Shorthand `Struct { field }`.
                        let segs = vec![name.clone()];
                        fields.push((name, Expr::Path { segs, line: ft.line }));
                    }
                } else {
                    self.pos += 1;
                }
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        Expr::StructLit { path, fields, line }
    }

    /// Parses macro arguments: the delimited token group, loosely split
    /// into expressions. Pieces that are not expressions become `Other`
    /// atoms — close enough for call/lock detection inside `emit!`-style
    /// macros.
    fn parse_macro_args(&mut self) -> Vec<Expr> {
        let (open, close) = match self.peek(0) {
            Some(t) if t.is_punct('(') => ('(', ')'),
            Some(t) if t.is_punct('[') => ('[', ']'),
            Some(t) if t.is_punct('{') => ('{', '}'),
            _ => return Vec::new(),
        };
        // Find the matching close delimiter.
        let mut depth = 0usize;
        let mut end = self.pos;
        while let Some(t) = self.toks.get(end) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        let inner_start = self.pos + 1;
        let inner: Vec<&Tok> = self.toks[inner_start..end.min(self.toks.len())].to_vec();
        self.pos = (end + 1).min(self.toks.len());
        let mut sub = Parser { toks: inner, pos: 0 };
        let mut args = Vec::new();
        while sub.peek(0).is_some() {
            let before = sub.pos;
            args.push(sub.parse_expr(false));
            while sub.eat_punct(',') || sub.eat_punct(';') {}
            if sub.pos == before {
                sub.pos += 1;
            }
        }
        args
    }
}

/// Joins type tokens into normalized text: a space only where two
/// word-ish tokens would otherwise fuse (`&mut TcpStream`,
/// `Mutex<SvcState>`).
fn join_ty(parts: &[String]) -> String {
    let mut out = String::new();
    for p in parts {
        let fuse = out.chars().last().is_some_and(|a| a.is_ascii_alphanumeric() || a == '_')
            && p.chars().next().is_some_and(|b| b.is_ascii_alphanumeric() || b == '_');
        if fuse {
            out.push(' ');
        }
        out.push_str(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(src: &str) -> File {
        parse(&lex(src)).expect("parses")
    }

    fn first_fn(f: &File) -> &FnDef {
        fn find(items: &[Item]) -> Option<&FnDef> {
            for i in items {
                match i {
                    Item::Fn(d) => return Some(d),
                    Item::Impl(im) => {
                        if let Some(d) = find(&im.items) {
                            return Some(d);
                        }
                    }
                    Item::Mod { items, .. } => {
                        if let Some(d) = find(items) {
                            return Some(d);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(&f.items).expect("has a fn")
    }

    #[test]
    fn fn_signature_and_body_parse() {
        let f = file("impl Svc { pub(crate) fn lock(&self) -> MutexGuard<'_, SvcState> { self.state.lock().unwrap() } }");
        let d = first_fn(&f);
        assert_eq!(d.name, "lock");
        assert!(d.ret.contains("MutexGuard<"));
        assert_eq!(d.params[0].name, "self");
        let body = d.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 1);
        match &body.stmts[0] {
            Stmt::Expr(Expr::MethodCall { method, recv, .. }) => {
                assert_eq!(method, "unwrap");
                match recv.as_ref() {
                    Expr::MethodCall { method, .. } => assert_eq!(method, "lock"),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn struct_fields_keep_type_text() {
        let f = file(
            "pub struct S { pub a: Mutex<Vec<u32>>, b: std::collections::HashMap<u64, Lease>, }",
        );
        let mut fields = Vec::new();
        for_each_struct(&f, &mut |s| fields = s.fields.iter().map(|f| f.ty.clone()).collect());
        assert!(fields[0].contains("Mutex<"));
        assert!(fields[1].contains("HashMap<"));
    }

    #[test]
    fn let_bindings_collect_names_and_init() {
        let f = file("fn f() { let (a, b) = pair(); let Some(x) = opt else { return }; let mut c: u32 = 0; }");
        let d = first_fn(&f);
        let body = d.body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Let(l) => assert_eq!(l.names, vec!["a", "b"]),
            other => panic!("unexpected {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Let(l) => {
                assert_eq!(l.names, vec!["x"]);
                assert!(l.else_block.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &body.stmts[2] {
            Stmt::Let(l) => {
                assert_eq!(l.names, vec!["c"]);
                assert_eq!(l.ty, "u32");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_let_match_and_loops_nest() {
        let src = "fn f(x: Option<u32>) { if let Some(v) = x { g(v); } match x { Some(v) => h(v), None => {} } while running() { step(); } for (k, v) in map.iter() { use_it(k, v); } }";
        let f = file(src);
        let d = first_fn(&f);
        let body = d.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
        match &body.stmts[0] {
            Stmt::Expr(Expr::If { let_names, .. }) => assert_eq!(let_names, &["v"]),
            other => panic!("unexpected {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Expr(Expr::Match { arms, .. }) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].names, vec!["v"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &body.stmts[3] {
            Stmt::Expr(Expr::For { names, .. }) => assert_eq!(names, &["k", "v"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chains_closures_macros_and_turbofish() {
        let src = r#"fn f() { let ids: Vec<u64> = st.leases.keys().copied().collect::<Vec<_>>(); emit!(Level::Info, "c", &[("k", v.into())]); spawn(move || { work(); }); }"#;
        let f = file(src);
        let d = first_fn(&f);
        let body = d.body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Let(l) => match l.init.as_ref().unwrap() {
                Expr::MethodCall { method, .. } => assert_eq!(method, "collect"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Expr(Expr::Macro { path, args, .. }) => {
                assert_eq!(path, &["emit"]);
                assert!(args.len() >= 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn struct_literals_and_no_struct_contexts() {
        let src = "fn f() { let c = Conn { slot: None, view: v.clone() }; if conn.slot.is_some() { reader.set_cap(MAX_FRAME); } }";
        let f = file(src);
        let d = first_fn(&f);
        let body = d.body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Let(l) => match l.init.as_ref().unwrap() {
                Expr::StructLit { path, fields, .. } => {
                    assert_eq!(path, &["Conn"]);
                    assert_eq!(fields.len(), 2);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Expr(Expr::If { then, .. }) => assert_eq!(then.stmts.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn consts_parse_and_evaluate() {
        let f = file("pub const HELLO_FRAME_CAP: usize = 1 << 16; const MAX: usize = 4 * 1024;");
        let mut vals = Vec::new();
        for_each_const(&f, &mut |c| {
            vals.push((c.name.clone(), c.value.as_ref().and_then(eval_const)));
        });
        assert_eq!(vals[0], ("HELLO_FRAME_CAP".to_string(), Some(1 << 16)));
        assert_eq!(vals[1], ("MAX".to_string(), Some(4096)));
    }

    #[test]
    fn labeled_loops_ranges_and_casts_do_not_derail() {
        let src = "fn f(n: usize) -> f64 { 'outer: loop { for i in 0..n { if i > 3 { break 'outer; } } } ; n as f64 * 0.5 }";
        let f = file(src);
        let d = first_fn(&f);
        assert!(d.body.is_some());
        assert_eq!(d.ret, "f64");
    }

    #[test]
    fn trait_bodies_expose_method_signatures() {
        let f = file("pub trait Check { fn id(&self) -> &'static str; fn run(&self, ws: &Workspace) { default() } }");
        let mut names = Vec::new();
        for_each_fn(&f, &mut |_, d| names.push(d.name.clone()));
        assert_eq!(names, vec!["id", "run"]);
    }
}
