//! Telemetry-name registry check.
//!
//! Metric names are stringly-typed at every registration site and again
//! in the README, the CI workflows and the scrape scripts; nothing but
//! convention keeps them aligned. This check makes the convention
//! mechanical, against the central catalog in
//! `crates/telemetry/src/names.rs`:
//!
//! 1. every name in the catalog is snake_case, `dx_`-prefixed and
//!    listed exactly once;
//! 2. every name passed to `counter`/`gauge`/`histogram`/`set_help` in
//!    non-test code appears in the catalog;
//! 3. every catalog name is actually registered somewhere, referenced
//!    by the docs (README/scripts/workflows), and every `dx_…` token in
//!    those docs resolves to a catalog name (histogram `_count`/`_sum`/
//!    `_bucket` series resolve to their base name);
//! 4. `events::emit` component and event names are legal snake_case
//!    (events are free-form by design — a campaign emits tenant-named
//!    fields — so they take no catalog, only a shape rule).

use std::collections::{BTreeMap, BTreeSet};

use super::{code_toks, snake_legal};
use crate::lexer::Kind;
use crate::{Check, Finding, Workspace};

/// The telemetry-name registry check (`telemetry-name`).
pub struct TelemetryNames;

const REGISTER_METHODS: [&str; 4] = ["counter", "gauge", "histogram", "set_help"];
/// Groups whose metric usage is exempt from catalog membership (ad-hoc
/// names in harnesses), though still shape-checked.
const EXEMPT_GROUPS: [&str; 3] = ["bench", "tests", "examples"];

impl Check for TelemetryNames {
    fn id(&self) -> &'static str {
        "telemetry-name"
    }

    fn describe(&self) -> &'static str {
        "metric names vs the names.rs catalog, the docs, and Prometheus legality"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // The catalog: every `dx_…` string literal in names.rs.
        let registry_file = ws.file_named("names.rs");
        let mut catalog: BTreeMap<String, usize> = BTreeMap::new();
        if let Some(reg) = registry_file {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for t in &reg.toks {
                let Some(name) = t.str_value() else { continue };
                if !name.starts_with("dx_") || reg.in_test(t.line) {
                    continue;
                }
                if !seen.insert(name) {
                    out.push(Finding {
                        file: reg.rel.clone(),
                        line: t.line,
                        check: "telemetry-name",
                        message: format!("`{name}` declared more than once in the catalog"),
                        hint: "each metric name is declared exactly once".to_string(),
                    });
                } else {
                    if !snake_legal(name) {
                        out.push(Finding {
                            file: reg.rel.clone(),
                            line: t.line,
                            check: "telemetry-name",
                            message: format!("`{name}` is not a legal metric name"),
                            hint: "use snake_case: [a-z_][a-z0-9_]*".to_string(),
                        });
                    }
                    catalog.insert(name.to_string(), t.line);
                }
            }
        }

        // Registration sites in non-test code.
        let mut used: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            if file.is_test_target()
                || Some(file.rel.as_str()) == registry_file.map(|f| f.rel.as_str())
            {
                continue;
            }
            let exempt = EXEMPT_GROUPS.contains(&file.group.as_str());
            let toks = code_toks(file);
            for i in 0..toks.len().saturating_sub(3) {
                if toks[i].is_punct('.')
                    && toks[i + 1].kind == Kind::Ident
                    && REGISTER_METHODS.contains(&toks[i + 1].text.as_str())
                    && toks[i + 2].is_punct('(')
                    && toks[i + 3].kind == Kind::Str
                {
                    let line = toks[i + 1].line;
                    if file.in_test(line) {
                        continue;
                    }
                    let Some(name) = toks[i + 3].str_value() else { continue };
                    if !snake_legal(name) {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line,
                            check: "telemetry-name",
                            message: format!("metric name `{name}` is not legal snake_case"),
                            hint: "Prometheus names here follow [a-z_][a-z0-9_]*".to_string(),
                        });
                    }
                    if exempt {
                        continue;
                    }
                    used.insert(name.to_string());
                    if registry_file.is_some() && !catalog.contains_key(name) {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line,
                            check: "telemetry-name",
                            message: format!(
                                "metric `{name}` is not declared in the names.rs catalog"
                            ),
                            hint: "add it to crates/telemetry/src/names.rs and the README table"
                                .to_string(),
                        });
                    }
                }
                // events::emit(Level::X, "component", "event", …)
                if toks[i].is_ident("emit") && toks[i + 1].is_punct('(') {
                    let line = toks[i].line;
                    if file.in_test(line) || exempt {
                        continue;
                    }
                    let mut strs = Vec::new();
                    let mut depth = 0i32;
                    for t in &toks[i + 1..] {
                        if t.is_punct('(') {
                            depth += 1;
                        } else if t.is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if t.kind == Kind::Str && depth == 1 && strs.len() < 2 {
                            strs.push(t);
                        }
                    }
                    for t in strs {
                        if let Some(v) = t.str_value() {
                            if !snake_legal(v) {
                                out.push(Finding {
                                    file: file.rel.clone(),
                                    line: t.line,
                                    check: "telemetry-name",
                                    message: format!(
                                        "event component/name `{v}` is not legal snake_case"
                                    ),
                                    hint: "JSONL event fields follow [a-z_][a-z0-9_]*".to_string(),
                                });
                            }
                        }
                    }
                }
            }
        }

        let Some(reg) = registry_file else {
            return;
        };
        // Catalog hygiene: no dead entries, and docs reference each name.
        let doc_text: String =
            ws.docs.iter().map(|(_, text)| text.as_str()).collect::<Vec<_>>().join("\n");
        for (name, line) in &catalog {
            if !used.contains(name) {
                out.push(Finding {
                    file: reg.rel.clone(),
                    line: *line,
                    check: "telemetry-name",
                    message: format!("catalog name `{name}` is never registered by any code"),
                    hint: "delete the dead entry or wire the metric up".to_string(),
                });
            }
            if !doc_text.contains(name) {
                out.push(Finding {
                    file: reg.rel.clone(),
                    line: *line,
                    check: "telemetry-name",
                    message: format!("catalog name `{name}` is not documented in the README"),
                    hint: "add it to the metrics table".to_string(),
                });
            }
        }
        // Docs must not reference names the catalog does not know.
        for (doc, text) in &ws.docs {
            for (lineno, line) in text.lines().enumerate() {
                for token in dx_tokens(line) {
                    let base = token
                        .strip_suffix("_count")
                        .or_else(|| token.strip_suffix("_sum"))
                        .or_else(|| token.strip_suffix("_bucket"))
                        .filter(|b| catalog.contains_key(*b));
                    if base.is_none() && !catalog.contains_key(token) {
                        out.push(Finding {
                            file: doc.clone(),
                            line: lineno + 1,
                            check: "telemetry-name",
                            message: format!(
                                "doc references metric `{token}`, which is not in the catalog"
                            ),
                            hint: "stale docs: fix the name or add it to names.rs".to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// `dx_…` word tokens in a line of documentation.
fn dx_tokens(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while let Some(pos) = line[i..].find("dx_") {
        let start = i + pos;
        // Must not be the tail of a larger word (dir names like
        // `/tmp/dx-…` use hyphens, so they never match `dx_`).
        let boundary =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let mut end = start;
        while end < line.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        if boundary && end > start + 3 {
            out.push(&line[start..end]);
        }
        i = end.max(start + 3);
    }
    out
}
