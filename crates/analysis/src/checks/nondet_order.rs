//! Nondeterministic-iteration-order detector.
//!
//! `HashMap`/`HashSet` iteration order changes between runs and between
//! processes (`RandomState`). When that order flows into anything
//! observable — a checkpoint codec, a wire frame, a report, a work
//! queue — identical campaigns produce different artifacts, which
//! breaks byte-stable checkpoint diffs and cross-process coverage
//! resume.
//!
//! The check walks each function's syntax tree and classifies method
//! chains rooted at a hash-typed place (a `HashMap`/`HashSet` struct
//! field or local). An enumeration (`iter`, `keys`, `values`, `drain`,
//! …) may flow through order-preserving adapters (`map`, `filter`,
//! `flat_map`, …) into an order-*insensitive* terminal (`any`, `count`,
//! `max_by_key`, `sum`, …) — that is fine. Reaching anything else —
//! `collect`, `fold`, `for_each`, a `for` loop body — is a finding:
//! the order escapes. The fix is almost always mechanical: use a
//! `BTreeMap`/`BTreeSet`, or sort before collecting.

use std::collections::BTreeSet;

use crate::ast::{self, Block, Expr, Stmt};
use crate::dataflow::GroupEnv;
use crate::{Check, Finding, SourceFile, Workspace};

/// The nondeterministic-iteration-order detector (`nondet-order`).
pub struct NondetOrder;

/// Methods that begin an enumeration of a hash container.
const ENUM_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
];

/// Iterator adapters that preserve (nondeterministic) order.
const PRESERVING: [&str; 16] = [
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "copied",
    "cloned",
    "chain",
    "enumerate",
    "take",
    "skip",
    "zip",
    "rev",
    "flatten",
    "inspect",
    "by_ref",
    "peekable",
];

/// Terminals whose result does not depend on iteration order.
const INSENSITIVE: [&str; 15] = [
    "any",
    "all",
    "count",
    "sum",
    "product",
    "max",
    "min",
    "max_by",
    "min_by",
    "max_by_key",
    "min_by_key",
    "find",
    "find_map",
    "position",
    "last",
];

impl Check for NondetOrder {
    fn id(&self) -> &'static str {
        "nondet-order"
    }

    fn describe(&self) -> &'static str {
        "HashMap/HashSet iteration order escaping into collections, codecs or loops"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for group in ws.group_names() {
            let files: Vec<_> = ws.group(&group).collect();
            let env = GroupEnv::build(&files);
            for info in env.fns.values() {
                if info.in_test || info.def.body.is_none() {
                    continue;
                }
                let mut v = Visitor {
                    file: info.file,
                    group: &group,
                    hash_fields: &env.hash_fields,
                    locals: BTreeSet::new(),
                    out,
                };
                for p in &info.def.params {
                    if p.ty.contains("HashMap<") || p.ty.contains("HashSet<") {
                        v.locals.insert(p.name.clone());
                    }
                }
                if let Some(body) = &info.def.body {
                    v.collect_locals(body);
                    v.walk_block(body);
                }
            }
        }
    }
}

struct Visitor<'a, 'o> {
    file: &'a SourceFile,
    group: &'a str,
    hash_fields: &'a BTreeSet<String>,
    locals: BTreeSet<String>,
    out: &'o mut Vec<Finding>,
}

/// Chain classification result.
enum Chain {
    /// An enumeration of the named hash place, unordered.
    Unordered(String),
    /// Anything order-safe.
    Plain,
}

impl Visitor<'_, '_> {
    /// The place text of a simple receiver (`self.leases` → `leases`).
    fn hash_place(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Path { segs, .. } => {
                let last = segs.last()?;
                (self.locals.contains(last) || self.hash_fields.contains(last))
                    .then(|| last.clone())
            }
            Expr::Field { name, .. } => (self.hash_fields.contains(name)
                || self.locals.contains(name))
            .then(|| name.clone()),
            Expr::Unary { inner } | Expr::Try { inner } => self.hash_place(inner),
            Expr::Tuple { items, .. } if items.len() == 1 => self.hash_place(&items[0]),
            _ => None,
        }
    }

    /// Registers locals of hash type from every `let` in the body.
    fn collect_locals(&mut self, b: &Block) {
        visit_blocks(b, &mut |stmt| {
            if let Stmt::Let(l) = stmt {
                if l.names.len() != 1 {
                    return;
                }
                let is_hash = l.ty.contains("HashMap<")
                    || l.ty.contains("HashSet<")
                    || l.init.as_ref().is_some_and(constructs_hash)
                    || l.init.as_ref().is_some_and(|e| self.hash_place(e).is_some());
                if is_hash {
                    self.locals.insert(l.names[0].clone());
                }
            }
        });
    }

    /// Classifies a method chain, reporting at the first order-sensitive
    /// escape. Returns the classification of this expression's value.
    fn classify(&mut self, e: &Expr) -> Chain {
        let Expr::MethodCall { recv, method, line, .. } = e else {
            return Chain::Plain;
        };
        if ENUM_METHODS.contains(&method.as_str()) {
            if let Some(place) = self.hash_place(recv) {
                return Chain::Unordered(place);
            }
        }
        match self.classify(recv) {
            Chain::Unordered(place) => {
                if PRESERVING.contains(&method.as_str()) {
                    Chain::Unordered(place)
                } else if INSENSITIVE.contains(&method.as_str()) {
                    Chain::Plain
                } else {
                    self.report(*line, &place, &format!("`{method}()`"));
                    Chain::Plain
                }
            }
            Chain::Plain => Chain::Plain,
        }
    }

    fn report(&mut self, line: usize, place: &str, sink: &str) {
        self.out.push(Finding {
            file: self.file.rel.clone(),
            line,
            check: "nondet-order",
            message: format!(
                "iteration over `{}::{place}` (HashMap/HashSet) escapes into {sink} — \
                 the order differs across runs and processes",
                self.group,
            ),
            hint: "use a BTreeMap/BTreeSet, or sort before collecting".to_string(),
        });
    }

    fn walk_block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        self.walk_expr(init);
                    }
                    if let Some(eb) = &l.else_block {
                        self.walk_block(eb);
                    }
                }
                Stmt::Expr(e) => self.walk_expr(e),
                Stmt::Item(_) => {}
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match e {
            Expr::MethodCall { recv, args, .. } => {
                self.classify(e);
                // Recurse into the chain's base and every link's args
                // for nested chains.
                self.walk_expr(recv);
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::For { iter, body, line, .. } => {
                let unordered = match self.classify(iter) {
                    Chain::Unordered(p) => Some(p),
                    Chain::Plain => self.hash_place(iter),
                };
                if let Some(place) = unordered {
                    self.report(*line, &place, "a `for` loop body");
                } else {
                    self.walk_expr(iter);
                }
                self.walk_block(body);
            }
            Expr::Call { callee, args, .. } => {
                self.walk_expr(callee);
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Field { recv, .. } => self.walk_expr(recv),
            Expr::Index { recv, index, .. } => {
                self.walk_expr(recv);
                self.walk_expr(index);
            }
            Expr::Try { inner } | Expr::Unary { inner } => self.walk_expr(inner),
            Expr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            Expr::Assign { target, value, .. } => {
                self.walk_expr(target);
                self.walk_expr(value);
            }
            Expr::Block(b) => self.walk_block(b),
            Expr::If { cond, then, alt, .. } => {
                self.walk_expr(cond);
                self.walk_block(then);
                if let Some(alt) = alt {
                    self.walk_expr(alt);
                }
            }
            Expr::Match { scrutinee, arms, .. } => {
                self.walk_expr(scrutinee);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.walk_expr(g);
                    }
                    self.walk_expr(&arm.body);
                }
            }
            Expr::While { cond, body, .. } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            Expr::Loop { body, .. } => self.walk_block(body),
            Expr::Closure { body, .. } => self.walk_expr(body),
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.walk_expr(v);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for i in items {
                    self.walk_expr(i);
                }
            }
            Expr::Ret { inner, .. } => {
                if let Some(i) = inner {
                    self.walk_expr(i);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Other { .. } => {}
        }
    }
}

/// Whether an initializer constructs a hash container.
fn constructs_hash(e: &Expr) -> bool {
    match e {
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                segs.len() >= 2 && matches!(segs[segs.len() - 2].as_str(), "HashMap" | "HashSet")
            } else {
                false
            }
        }
        Expr::MethodCall { recv, method, .. }
            if matches!(method.as_str(), "unwrap" | "expect" | "clone") =>
        {
            constructs_hash(recv)
        }
        _ => false,
    }
}

/// Applies `f` to every statement in the block, nested blocks included.
fn visit_blocks(b: &Block, f: &mut impl FnMut(&Stmt)) {
    for stmt in &b.stmts {
        f(stmt);
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    visit_expr_blocks(init, f);
                }
                if let Some(eb) = &l.else_block {
                    visit_blocks(eb, f);
                }
            }
            Stmt::Expr(e) => visit_expr_blocks(e, f),
            Stmt::Item(ast::Item::Fn(d)) => {
                if let Some(body) = &d.body {
                    visit_blocks(body, f);
                }
            }
            Stmt::Item(_) => {}
        }
    }
}

fn visit_expr_blocks(e: &Expr, f: &mut impl FnMut(&Stmt)) {
    match e {
        Expr::Block(b) | Expr::Loop { body: b, .. } => visit_blocks(b, f),
        Expr::If { cond, then, alt, .. } => {
            visit_expr_blocks(cond, f);
            visit_blocks(then, f);
            if let Some(alt) = alt {
                visit_expr_blocks(alt, f);
            }
        }
        Expr::Match { scrutinee, arms, .. } => {
            visit_expr_blocks(scrutinee, f);
            for arm in arms {
                visit_expr_blocks(&arm.body, f);
            }
        }
        Expr::While { cond, body, .. } => {
            visit_expr_blocks(cond, f);
            visit_blocks(body, f);
        }
        Expr::For { iter, body, .. } => {
            visit_expr_blocks(iter, f);
            visit_blocks(body, f);
        }
        Expr::Closure { body, .. } | Expr::Try { inner: body } | Expr::Unary { inner: body } => {
            visit_expr_blocks(body, f);
        }
        Expr::MethodCall { recv, args, .. } => {
            visit_expr_blocks(recv, f);
            for a in args {
                visit_expr_blocks(a, f);
            }
        }
        Expr::Call { callee, args, .. } => {
            visit_expr_blocks(callee, f);
            for a in args {
                visit_expr_blocks(a, f);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            visit_expr_blocks(lhs, f);
            visit_expr_blocks(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            visit_expr_blocks(target, f);
            visit_expr_blocks(value, f);
        }
        Expr::Field { recv, .. } => visit_expr_blocks(recv, f),
        Expr::Index { recv, index, .. } => {
            visit_expr_blocks(recv, f);
            visit_expr_blocks(index, f);
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                visit_expr_blocks(v, f);
            }
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for i in items {
                visit_expr_blocks(i, f);
            }
        }
        Expr::Macro { args, .. } => {
            for a in args {
                visit_expr_blocks(a, f);
            }
        }
        Expr::Ret { inner: Some(i), .. } => visit_expr_blocks(i, f),
        _ => {}
    }
}
