//! Crate-attribute check: `#![forbid(unsafe_code)]` stays present.
//!
//! Every crate entry file (`src/lib.rs`, `src/main.rs`) must carry
//! `#![forbid(unsafe_code)]`. A crate with a narrowly-scoped unsafe
//! dependency (the dist plane's signal handler) may carry
//! `#![deny(unsafe_code)]` instead — deniable locally with a visible
//! `#[allow(unsafe_code)]`, which forbid would reject — but the
//! attribute must still be there. The analysis crate itself must also
//! carry `#![deny(missing_docs)]`: the check catalog is documentation.

use super::code_toks;
use crate::lexer::Tok;
use crate::{Check, Finding, Workspace};

/// The crate-attribute check (`crate-attrs`).
pub struct CrateAttrs;

impl Check for CrateAttrs {
    fn id(&self) -> &'static str {
        "crate-attrs"
    }

    fn describe(&self) -> &'static str {
        "#![forbid(unsafe_code)] on every crate root (and #![deny(missing_docs)] on dx-analysis)"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            let entry = file.rel.ends_with("/src/lib.rs") || file.rel.ends_with("/src/main.rs");
            if !entry {
                continue;
            }
            let toks = code_toks(file);
            let forbid = has_inner_attr(&toks, "forbid", "unsafe_code");
            let deny = has_inner_attr(&toks, "deny", "unsafe_code");
            if !forbid && !deny {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: 1,
                    check: "crate-attrs",
                    message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
                    hint: "add the attribute (or `#![deny(unsafe_code)]` if the crate has a \
                           justified unsafe block)"
                        .to_string(),
                });
            }
            if file.group == "analysis"
                && file.rel.ends_with("/src/lib.rs")
                && !has_inner_attr(&toks, "deny", "missing_docs")
            {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: 1,
                    check: "crate-attrs",
                    message: "dx-analysis must carry `#![deny(missing_docs)]`".to_string(),
                    hint: "the check catalog is documentation; keep it enforced".to_string(),
                });
            }
        }
    }
}

/// Whether the token stream contains `#![level(lint)]`.
fn has_inner_attr(toks: &[&Tok], level: &str, lint: &str) -> bool {
    toks.windows(7).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(level)
            && w[4].is_punct('(')
            && w[5].is_ident(lint)
            && w[6].is_punct(')')
    })
}
