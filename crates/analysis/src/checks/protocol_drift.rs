//! Protocol-drift check: `proto.rs` vs itself and vs `service/spec.rs`.
//!
//! The wire protocol is string-typed by design (dependency-free JSON),
//! which means rustc cannot see when a `Msg` variant is added without a
//! parse arm, a `Fingerprint` field stops being serialized, or the
//! service spec keeps "validating" a fingerprint field that no longer
//! exists. This check cross-references:
//!
//! 1. `PROTOCOL_VERSION` — declared exactly once, in `proto.rs`.
//! 2. every `Msg` variant appears in both `Msg::to_json` and
//!    `Msg::from_json`;
//! 3. every `Fingerprint` struct field is written by
//!    `Fingerprint::to_json` and read by `Fingerprint::from_json` as a
//!    JSON key;
//! 4. every `CampaignSpec` field that shadows a `Fingerprint` field is
//!    actually compared against `fp.<field>` in `CampaignSpec::validate`,
//!    and `validate` never references a fingerprint field that is gone.

use super::{code_toks, contains_ident, fn_bodies, impl_span, struct_fields};
use crate::lexer::Kind;
use crate::{Check, Finding, SourceFile, Workspace};

/// The protocol-drift check (`proto-drift`).
pub struct ProtocolDrift;

impl Check for ProtocolDrift {
    fn id(&self) -> &'static str {
        "proto-drift"
    }

    fn describe(&self) -> &'static str {
        "PROTOCOL_VERSION, Msg variants and Fingerprint fields vs their codecs and spec.rs"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let proto = ws.file_named("proto.rs");
        let spec = ws.file_named("spec.rs");
        // One PROTOCOL_VERSION, and it lives in proto.rs.
        let mut decls = Vec::new();
        for f in &ws.files {
            let toks = code_toks(f);
            for (i, t) in toks.iter().enumerate() {
                if t.is_ident("const")
                    && toks.get(i + 1).is_some_and(|n| n.is_ident("PROTOCOL_VERSION"))
                {
                    decls.push((f.rel.clone(), t.line));
                }
            }
        }
        if let Some(proto) = proto {
            if decls.is_empty() {
                out.push(Finding {
                    file: proto.rel.clone(),
                    line: 1,
                    check: "proto-drift",
                    message: "no `const PROTOCOL_VERSION` declared".to_string(),
                    hint: "declare the wire version once in proto.rs".to_string(),
                });
            }
            for (file, line) in decls.iter().filter(|(f, _)| f != &proto.rel) {
                out.push(Finding {
                    file: file.clone(),
                    line: *line,
                    check: "proto-drift",
                    message: "`PROTOCOL_VERSION` declared outside proto.rs".to_string(),
                    hint: "proto.rs is the single source of truth for the wire version".to_string(),
                });
            }
            if decls.iter().filter(|(f, _)| f == &proto.rel).count() > 1 {
                out.push(Finding {
                    file: proto.rel.clone(),
                    line: decls[0].1,
                    check: "proto-drift",
                    message: "`PROTOCOL_VERSION` declared more than once".to_string(),
                    hint: "keep a single declaration".to_string(),
                });
            }
            self.check_msg(proto, out);
            self.check_fingerprint(proto, spec, out);
        }
    }
}

impl ProtocolDrift {
    fn check_msg(&self, proto: &SourceFile, out: &mut Vec<Finding>) {
        let toks = code_toks(proto);
        let variants = enum_variants(&toks, "Msg");
        let Some((open, close)) = impl_span(&toks, "Msg") else { return };
        let bodies = fn_bodies(&toks[open..close]);
        let to_json = bodies.iter().find(|b| b.name == "to_json");
        let from_json = bodies.iter().find(|b| b.name == "from_json");
        for (name, line) in &variants {
            for (dir, body) in [("to_json", to_json), ("from_json", from_json)] {
                let present =
                    body.is_some_and(|b| contains_ident(&toks[open..close], b.open..b.close, name));
                if !present {
                    out.push(Finding {
                        file: proto.rel.clone(),
                        line: *line,
                        check: "proto-drift",
                        message: format!("`Msg::{name}` is missing from `{dir}`"),
                        hint: format!("add a `{dir}` arm for the variant or delete it"),
                    });
                }
            }
        }
    }

    fn check_fingerprint(
        &self,
        proto: &SourceFile,
        spec: Option<&SourceFile>,
        out: &mut Vec<Finding>,
    ) {
        let toks = code_toks(proto);
        let fields = struct_fields(&toks, "Fingerprint");
        if let Some((open, close)) = impl_span(&toks, "Fingerprint") {
            let bodies = fn_bodies(&toks[open..close]);
            for dir in ["to_json", "from_json"] {
                let Some(body) = bodies.iter().find(|b| b.name == dir) else { continue };
                for field in &fields {
                    let present = toks[open..close][body.open..body.close]
                        .iter()
                        .any(|t| t.str_value() == Some(field));
                    if !present {
                        out.push(Finding {
                            file: proto.rel.clone(),
                            line: proto
                                .toks
                                .iter()
                                .find(|t| t.is_ident(field))
                                .map_or(1, |t| t.line),
                            check: "proto-drift",
                            message: format!(
                                "Fingerprint field `{field}` is not a JSON key in `{dir}`"
                            ),
                            hint: "serialize every fingerprint field or remove it".to_string(),
                        });
                    }
                }
            }
        }
        // spec.rs: shadowed fields must be validated; validated fields
        // must still exist.
        let Some(spec) = spec else { return };
        let stoks = code_toks(spec);
        let spec_fields = struct_fields(&stoks, "CampaignSpec");
        let Some(validate) = fn_bodies(&stoks).into_iter().find(|b| b.name == "validate") else {
            return;
        };
        for field in spec_fields.iter().filter(|f| fields.contains(f)) {
            let compared = (validate.open..validate.close.saturating_sub(2)).any(|i| {
                stoks[i].is_ident("fp")
                    && stoks[i + 1].is_punct('.')
                    && stoks[i + 2].is_ident(field)
            });
            if !compared {
                out.push(Finding {
                    file: spec.rel.clone(),
                    line: validate.line,
                    check: "proto-drift",
                    message: format!(
                        "CampaignSpec::validate no longer asserts `{field}` against the \
                         fleet fingerprint"
                    ),
                    hint: format!("compare self.{field} with fp.{field} (mismatch is a 400)"),
                });
            }
        }
        for i in validate.open..validate.close.saturating_sub(2) {
            if stoks[i].is_ident("fp")
                && stoks[i + 1].is_punct('.')
                && stoks[i + 2].kind == Kind::Ident
                && !fields.contains(&stoks[i + 2].text)
            {
                out.push(Finding {
                    file: spec.rel.clone(),
                    line: stoks[i + 2].line,
                    check: "proto-drift",
                    message: format!(
                        "validate references `fp.{}`, which is not a Fingerprint field",
                        stoks[i + 2].text
                    ),
                    hint: "the fingerprint schema moved; update spec.rs".to_string(),
                });
            }
        }
    }
}

/// Variant names of `enum Name { … }` with their lines: idents at
/// depth 1 that open a variant (preceded by `{`, `,` or `]` — the `]`
/// closes a variant attribute).
fn enum_variants(toks: &[&crate::lexer::Tok], name: &str) -> Vec<(String, usize)> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let close = super::match_brace(toks, j);
            let mut variants = Vec::new();
            let mut depth = 0usize;
            for k in j..close {
                if toks[k].is_punct('{') || toks[k].is_punct('(') || toks[k].is_punct('[') {
                    depth += 1;
                } else if toks[k].is_punct('}') || toks[k].is_punct(')') || toks[k].is_punct(']') {
                    depth = depth.saturating_sub(1);
                } else if depth == 1 && toks[k].kind == Kind::Ident && k > j {
                    let prev = &toks[k - 1];
                    if prev.is_punct('{') || prev.is_punct(',') || prev.is_punct(']') {
                        variants.push((toks[k].text.clone(), toks[k].line));
                    }
                }
            }
            return variants;
        }
        i += 1;
    }
    Vec::new()
}
