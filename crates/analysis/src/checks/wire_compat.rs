//! Wire-protocol compatibility invariants.
//!
//! The dist wire protocol's safety rests on three constants and one
//! ordering rule, spread across files that evolve independently:
//!
//! 1. `MAX_FRAME` has exactly one declaration — a second copy drifts.
//! 2. Every `HELLO_FRAME_CAP` declaration (the coordinator and the
//!    service dispatcher each keep one next to their accept loop) has
//!    the same value, and that value is smaller than `MAX_FRAME`: the
//!    pre-admission cap must be the tight one.
//! 3. In any function that creates a handshake reader
//!    (`FrameReader::with_cap(..)`) and later raises the cap
//!    (`set_cap`), the reader must start at `HELLO_FRAME_CAP` and every
//!    `set_cap` must sit inside an admission guard — an `if`/`match`
//!    on the connection's `slot` (or an `admitted` flag). Raising the
//!    cap before admission lets an unauthenticated peer post a 256 MiB
//!    frame.
//! 4. `Hello { version: … }` is built from `PROTOCOL_VERSION`, and the
//!    version field is never compared against a numeric literal — a
//!    hardcoded version freezes the handshake at one number.
//!
//! All rules skip test code, where speaking an old version on purpose
//! is the point.

use std::collections::BTreeMap;

use crate::ast::{self, eval_const, Block, Expr, Stmt};
use crate::{Check, Finding, SourceFile, Workspace};

/// The wire-compatibility checker (`wire-compat`).
pub struct WireCompat;

impl Check for WireCompat {
    fn id(&self) -> &'static str {
        "wire-compat"
    }

    fn describe(&self) -> &'static str {
        "frame-cap constants, handshake cap ordering and protocol-version hygiene in sync"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        check_constants(ws, out);
        for file in &ws.files {
            if file.is_test_target() {
                continue;
            }
            check_handshake_order(file, out);
            check_version_hygiene(file, out);
        }
    }
}

/// One constant declaration site.
struct Decl {
    file: String,
    line: usize,
    value: Option<u64>,
}

/// Rules 1 and 2: declaration uniqueness and value agreement.
fn check_constants(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut decls: BTreeMap<&str, Vec<Decl>> = BTreeMap::new();
    for file in &ws.files {
        if file.is_test_target() {
            continue;
        }
        let Some(tree) = file.ast.as_ref() else { continue };
        ast::for_each_const(tree, &mut |c| {
            if matches!(c.name.as_str(), "MAX_FRAME" | "HELLO_FRAME_CAP" | "PROTOCOL_VERSION")
                && !file.in_test(c.line)
            {
                decls
                    .entry(match c.name.as_str() {
                        "MAX_FRAME" => "MAX_FRAME",
                        "HELLO_FRAME_CAP" => "HELLO_FRAME_CAP",
                        _ => "PROTOCOL_VERSION",
                    })
                    .or_default()
                    .push(Decl {
                        file: file.rel.clone(),
                        line: c.line,
                        value: c.value.as_ref().and_then(eval_const),
                    });
            }
        });
    }

    // Rule 1: single source of truth for MAX_FRAME and PROTOCOL_VERSION.
    for name in ["MAX_FRAME", "PROTOCOL_VERSION"] {
        if let Some(sites) = decls.get(name) {
            for extra in sites.iter().skip(1) {
                out.push(Finding {
                    file: extra.file.clone(),
                    line: extra.line,
                    check: "wire-compat",
                    message: format!(
                        "`{name}` declared again here (first declared in {}:{}) — \
                         two copies drift apart silently",
                        sites[0].file, sites[0].line,
                    ),
                    hint: format!("import the canonical `{name}` instead of redeclaring it"),
                });
            }
        }
    }

    // Rule 2: HELLO_FRAME_CAP values agree and stay below MAX_FRAME.
    let max_frame = decls.get("MAX_FRAME").and_then(|s| s.first()).and_then(|d| d.value);
    if let Some(sites) = decls.get("HELLO_FRAME_CAP") {
        let first = &sites[0];
        for site in sites.iter().skip(1) {
            if site.value != first.value {
                out.push(Finding {
                    file: site.file.clone(),
                    line: site.line,
                    check: "wire-compat",
                    message: format!(
                        "`HELLO_FRAME_CAP` is {} here but {} in {}:{} — both ends of the \
                         handshake must agree on the pre-admission cap",
                        fmt_val(site.value),
                        fmt_val(first.value),
                        first.file,
                        first.line,
                    ),
                    hint: "use one value (or one shared constant) on both planes".to_string(),
                });
            }
        }
        for site in sites {
            if let (Some(cap), Some(max)) = (site.value, max_frame) {
                if cap >= max {
                    out.push(Finding {
                        file: site.file.clone(),
                        line: site.line,
                        check: "wire-compat",
                        message: format!(
                            "`HELLO_FRAME_CAP` ({cap}) is not below `MAX_FRAME` ({max}) — \
                             the pre-admission cap must be the tight one"
                        ),
                        hint: "keep the handshake cap small; raise to MAX_FRAME after admission"
                            .to_string(),
                    });
                }
            }
        }
    }
}

fn fmt_val(v: Option<u64>) -> String {
    v.map_or_else(|| "un-evaluatable".to_string(), |v| v.to_string())
}

/// Rule 3: handshake readers start small and only grow under an
/// admission guard.
fn check_handshake_order(file: &SourceFile, out: &mut Vec<Finding>) {
    let Some(tree) = file.ast.as_ref() else { return };
    ast::for_each_fn(tree, &mut |_, def| {
        if file.in_test(def.line) {
            return;
        }
        let Some(body) = &def.body else { return };
        let mut v = HandshakeScan::default();
        v.walk_block(body, false);
        if v.with_cap.is_empty() || v.set_cap.is_empty() {
            return;
        }
        for (line, arg_is_hello) in &v.with_cap {
            if !arg_is_hello {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: *line,
                    check: "wire-compat",
                    message: "handshake `FrameReader::with_cap` not seeded with \
                              `HELLO_FRAME_CAP` even though this function raises the cap \
                              later — pre-admission frames get the big cap"
                        .to_string(),
                    hint: "start at HELLO_FRAME_CAP; set_cap(MAX_FRAME) after admission"
                        .to_string(),
                });
            }
        }
        for (line, guarded) in &v.set_cap {
            if !guarded {
                out.push(Finding {
                    file: file.rel.clone(),
                    line: *line,
                    check: "wire-compat",
                    message: "`set_cap` raises the frame cap outside an admission guard \
                              (no enclosing check of `slot`/`admitted`) — an unadmitted \
                              peer could post max-size frames"
                        .to_string(),
                    hint: "wrap the set_cap in `if conn.slot.is_some() { … }`".to_string(),
                });
            }
        }
    });
}

/// Collects `FrameReader::with_cap` / `.set_cap` sites, tracking whether
/// each `set_cap` sits under an admission-condition branch.
#[derive(Default)]
struct HandshakeScan {
    /// `(line, argument is HELLO_FRAME_CAP)`.
    with_cap: Vec<(usize, bool)>,
    /// `(line, inside an admission guard)`.
    set_cap: Vec<(usize, bool)>,
}

impl HandshakeScan {
    fn walk_block(&mut self, b: &Block, guarded: bool) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        self.walk_expr(init, guarded);
                    }
                    if let Some(eb) = &l.else_block {
                        self.walk_block(eb, guarded);
                    }
                }
                Stmt::Expr(e) => self.walk_expr(e, guarded),
                Stmt::Item(_) => {}
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr, guarded: bool) {
        match e {
            Expr::Call { callee, args, line } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if segs.len() >= 2
                        && segs[segs.len() - 2] == "FrameReader"
                        && segs[segs.len() - 1] == "with_cap"
                    {
                        let is_hello =
                            args.first().is_some_and(|a| path_ends(a, "HELLO_FRAME_CAP"));
                        self.with_cap.push((*line, is_hello));
                    }
                }
                for a in args {
                    self.walk_expr(a, guarded);
                }
            }
            Expr::MethodCall { recv, method, args, line } => {
                if method == "set_cap" {
                    self.set_cap.push((*line, guarded));
                }
                self.walk_expr(recv, guarded);
                for a in args {
                    self.walk_expr(a, guarded);
                }
            }
            Expr::If { cond, then, alt, .. } => {
                let g = guarded || mentions_admission(cond);
                self.walk_expr(cond, guarded);
                self.walk_block(then, g);
                if let Some(alt) = alt {
                    self.walk_expr(alt, g);
                }
            }
            Expr::Match { scrutinee, arms, .. } => {
                let g = guarded || mentions_admission(scrutinee);
                self.walk_expr(scrutinee, guarded);
                for arm in arms {
                    if let Some(gd) = &arm.guard {
                        self.walk_expr(gd, g);
                    }
                    self.walk_expr(&arm.body, g);
                }
            }
            Expr::Block(b) => self.walk_block(b, guarded),
            Expr::While { cond, body, .. } => {
                self.walk_expr(cond, guarded);
                self.walk_block(body, guarded);
            }
            Expr::Loop { body, .. } => self.walk_block(body, guarded),
            Expr::For { iter, body, .. } => {
                self.walk_expr(iter, guarded);
                self.walk_block(body, guarded);
            }
            Expr::Closure { body, .. } => self.walk_expr(body, guarded),
            Expr::Try { inner } | Expr::Unary { inner } => self.walk_expr(inner, guarded),
            Expr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs, guarded);
                self.walk_expr(rhs, guarded);
            }
            Expr::Assign { target, value, .. } => {
                self.walk_expr(target, guarded);
                self.walk_expr(value, guarded);
            }
            Expr::Field { recv, .. } => self.walk_expr(recv, guarded),
            Expr::Index { recv, index, .. } => {
                self.walk_expr(recv, guarded);
                self.walk_expr(index, guarded);
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.walk_expr(v, guarded);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for i in items {
                    self.walk_expr(i, guarded);
                }
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.walk_expr(a, guarded);
                }
            }
            Expr::Ret { inner: Some(i), .. } => self.walk_expr(i, guarded),
            _ => {}
        }
    }
}

/// Whether a condition expression references the admission state —
/// a `slot` or `admitted` place anywhere inside it.
fn mentions_admission(e: &Expr) -> bool {
    match e {
        Expr::Path { segs, .. } => segs.iter().any(|s| s == "slot" || s == "admitted"),
        Expr::Field { recv, name, .. } => {
            name == "slot" || name == "admitted" || mentions_admission(recv)
        }
        Expr::MethodCall { recv, args, .. } => {
            mentions_admission(recv) || args.iter().any(mentions_admission)
        }
        Expr::Call { callee, args, .. } => {
            mentions_admission(callee) || args.iter().any(mentions_admission)
        }
        Expr::Try { inner } | Expr::Unary { inner } => mentions_admission(inner),
        Expr::Binary { lhs, rhs, .. } => mentions_admission(lhs) || mentions_admission(rhs),
        Expr::Tuple { items, .. } => items.iter().any(mentions_admission),
        _ => false,
    }
}

/// Whether an expression is (a reference to) a path ending in `name`.
fn path_ends(e: &Expr, name: &str) -> bool {
    match e {
        Expr::Path { segs, .. } => segs.last().is_some_and(|s| s == name),
        Expr::Unary { inner } | Expr::Try { inner } => path_ends(inner, name),
        _ => false,
    }
}

/// Rule 4: `Hello { version }` uses `PROTOCOL_VERSION`; no literal
/// version comparisons.
fn check_version_hygiene(file: &SourceFile, out: &mut Vec<Finding>) {
    if !file.toks.iter().any(|t| t.is_ident("Hello")) {
        return;
    }
    let Some(tree) = file.ast.as_ref() else { return };
    ast::for_each_fn(tree, &mut |_, def| {
        if file.in_test(def.line) {
            return;
        }
        let Some(body) = &def.body else { return };
        visit_exprs(body, &mut |e| match e {
            Expr::StructLit { path, fields, line } if path.last().is_some_and(|p| p == "Hello") => {
                for (fname, value) in fields {
                    // Only a literal is hardcoding; decoders filling
                    // the field from parsed wire data are fine.
                    if fname == "version" && matches!(value, Expr::Lit { .. }) {
                        out.push(Finding {
                            file: file.rel.clone(),
                            line: *line,
                            check: "wire-compat",
                            message: "`Hello { version: … }` not built from \
                                      `PROTOCOL_VERSION` — a hardcoded version freezes \
                                      the handshake"
                                .to_string(),
                            hint: "use `version: PROTOCOL_VERSION`".to_string(),
                        });
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } if op == "==" || op == "!=" => {
                let version_vs_lit = (is_version_place(lhs)
                    && matches!(rhs.as_ref(), Expr::Lit { .. }))
                    || (is_version_place(rhs) && matches!(lhs.as_ref(), Expr::Lit { .. }));
                if version_vs_lit {
                    out.push(Finding {
                        file: file.rel.clone(),
                        line: lhs.line(),
                        check: "wire-compat",
                        message: "protocol version compared against a numeric literal — \
                                  drifts silently when `PROTOCOL_VERSION` bumps"
                            .to_string(),
                        hint: "compare against `PROTOCOL_VERSION`".to_string(),
                    });
                }
            }
            _ => {}
        });
    });
}

fn is_version_place(e: &Expr) -> bool {
    match e {
        Expr::Path { segs, .. } => segs.last().is_some_and(|s| s == "version"),
        Expr::Field { name, .. } => name == "version",
        Expr::Unary { inner } | Expr::Try { inner } => is_version_place(inner),
        _ => false,
    }
}

/// Applies `f` to every expression in the block, recursively.
fn visit_exprs(b: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    visit_expr(init, f);
                }
                if let Some(eb) = &l.else_block {
                    visit_exprs(eb, f);
                }
            }
            Stmt::Expr(e) => visit_expr(e, f),
            Stmt::Item(ast::Item::Fn(d)) => {
                if let Some(body) = &d.body {
                    visit_exprs(body, f);
                }
            }
            Stmt::Item(_) => {}
        }
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Call { callee, args, .. } => {
            visit_expr(callee, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            visit_expr(recv, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        Expr::Field { recv, .. } => visit_expr(recv, f),
        Expr::Index { recv, index, .. } => {
            visit_expr(recv, f);
            visit_expr(index, f);
        }
        Expr::Try { inner } | Expr::Unary { inner } => visit_expr(inner, f),
        Expr::Binary { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            visit_expr(target, f);
            visit_expr(value, f);
        }
        Expr::Block(b) => visit_exprs(b, f),
        Expr::If { cond, then, alt, .. } => {
            visit_expr(cond, f);
            visit_exprs(then, f);
            if let Some(alt) = alt {
                visit_expr(alt, f);
            }
        }
        Expr::Match { scrutinee, arms, .. } => {
            visit_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    visit_expr(g, f);
                }
                visit_expr(&arm.body, f);
            }
        }
        Expr::While { cond, body, .. } => {
            visit_expr(cond, f);
            visit_exprs(body, f);
        }
        Expr::Loop { body, .. } => visit_exprs(body, f),
        Expr::For { iter, body, .. } => {
            visit_expr(iter, f);
            visit_exprs(body, f);
        }
        Expr::Closure { body, .. } => visit_expr(body, f),
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                visit_expr(v, f);
            }
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for i in items {
                visit_expr(i, f);
            }
        }
        Expr::Macro { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        Expr::Ret { inner: Some(i), .. } => visit_expr(i, f),
        _ => {}
    }
}
