//! The check catalog and the token-level helpers checks share.

mod checkpoint_schema;
mod crate_attrs;
mod hold_blocking;
mod lock_order;
mod nondet_order;
mod panic_path;
mod protocol_drift;
mod telemetry_names;
mod wire_compat;

use crate::lexer::{Kind, Tok};
use crate::{Check, SourceFile};

/// Every registered check, in catalog order.
pub fn all() -> Vec<Box<dyn Check>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(hold_blocking::HoldBlocking),
        Box::new(nondet_order::NondetOrder),
        Box::new(wire_compat::WireCompat),
        Box::new(panic_path::PanicPath),
        Box::new(protocol_drift::ProtocolDrift),
        Box::new(telemetry_names::TelemetryNames),
        Box::new(checkpoint_schema::CheckpointSchema),
        Box::new(crate_attrs::CrateAttrs),
    ]
}

/// The file's tokens with comments stripped — what most checks walk.
pub(crate) fn code_toks(file: &SourceFile) -> Vec<&Tok> {
    file.toks.iter().filter(|t| !matches!(t.kind, Kind::LineComment | Kind::BlockComment)).collect()
}

/// A function definition found in a token stream: its name and the
/// half-open code-token range of its body (inside the braces).
pub(crate) struct FnBody {
    pub name: String,
    pub line: usize,
    /// Index of the opening `{` in the code-token slice.
    pub open: usize,
    /// Index one past the matching `}`.
    pub close: usize,
}

/// Finds every `fn name(...) ... { ... }` definition in `toks`
/// (comment-free). Trait-method declarations ending in `;` are skipped.
pub(crate) fn fn_bodies(toks: &[&Tok]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].kind == Kind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // The body opens at the first `{` after the signature; a `;`
            // first means a bodyless declaration.
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    body = Some(j);
                    break;
                }
                if toks[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = match_brace(toks, open);
                out.push(FnBody { name, line, open, close });
                // Continue scanning *inside* the body too: nested fns and
                // closures containing fns are rare but cheap to cover.
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Index one past the `}` matching the `{` at `open`.
pub(crate) fn match_brace(toks: &[&Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    toks.len()
}

/// The span of `impl Name { ... }` (code-token indices, body inclusive),
/// or `None`. Matches both `impl Name` and `impl Trait for Name`.
pub(crate) fn impl_span(toks: &[&Tok], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Find the `{` that opens the impl body and check the last
            // ident before it (skipping generics) names our type.
            let mut j = i + 1;
            let mut last_ident = None;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].kind == Kind::Ident && !toks[j].is_ident("for") {
                    last_ident = Some(&toks[j].text);
                }
                j += 1;
            }
            if last_ident.map(String::as_str) == Some(name) && j < toks.len() {
                return Some((j, match_brace(toks, j)));
            }
            i = j;
        }
        i += 1;
    }
    None
}

/// Field names of `struct Name { ... }`: idents at brace depth 1
/// followed by `:`. Attributes and visibility keywords are skipped by
/// construction (neither is an ident directly followed by `:` at depth
/// 1 — `pub` precedes the field ident).
pub(crate) fn struct_fields(toks: &[&Tok], name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("struct") && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_punct(';') {
                    return fields; // tuple/unit struct
                }
                j += 1;
            }
            let close = match_brace(toks, j);
            let mut depth = 0usize;
            for k in j..close {
                if toks[k].is_punct('{') {
                    depth += 1;
                } else if toks[k].is_punct('}') {
                    depth -= 1;
                } else if depth == 1
                    && toks[k].kind == Kind::Ident
                    && k + 1 < close
                    && toks[k + 1].is_punct(':')
                    && !toks[k].is_ident("pub")
                {
                    // Skip generic-bound colons inside types: a field
                    // ident is preceded by `{`, `,` or `pub`.
                    let prev = &toks[k - 1];
                    if prev.is_punct('{') || prev.is_punct(',') || prev.is_ident("pub") {
                        fields.push(toks[k].text.clone());
                    }
                }
            }
            return fields;
        }
        i += 1;
    }
    fields
}

/// Whether `needle` occurs as an identifier anywhere in the range.
pub(crate) fn contains_ident(toks: &[&Tok], range: std::ops::Range<usize>, needle: &str) -> bool {
    toks[range].iter().any(|t| t.is_ident(needle))
}

/// Whether a name is a legal snake_case identifier (our convention for
/// metric names, JSON keys, and event names).
pub(crate) fn snake_legal(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}
