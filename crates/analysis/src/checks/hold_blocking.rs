//! Blocking-call-under-lock detector.
//!
//! The dist/service planes keep one hot `Mutex<State>` per process; the
//! design rule (established when spot-checks moved "outside the state
//! lock") is that nothing blocking — socket frame I/O, `TcpStream` /
//! `File` reads and writes, `thread::sleep`, channel `recv` — runs
//! while a guard on a *contended* lock is held. A connection handler
//! that writes a frame under the state lock stalls every other
//! connection on a slow peer.
//!
//! The check replays each function's dataflow events: a blocking event,
//! or a call into a function whose transitive body blocks, reached with
//! a contended guard held is a finding. A lock is *contended* when two
//! or more functions in the group acquire it; a single-acquirer mutex
//! (the `ckpt_io` pattern — one writer serializing checkpoint file I/O,
//! where blocking under the guard is the entire point) is exempt by
//! construction, not by suppression.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::{extract, simulate, Ev, FnFacts, GroupEnv};
use crate::{Check, Finding, Workspace};

/// The blocking-call-under-lock detector (`hold-blocking`).
pub struct HoldBlocking;

impl Check for HoldBlocking {
    fn id(&self) -> &'static str {
        "hold-blocking"
    }

    fn describe(&self) -> &'static str {
        "blocking I/O, sleeps or channel reads while a contended lock guard is held"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for group in ws.group_names() {
            run_group(ws, &group, out);
        }
    }
}

fn bare(qname: &str) -> &str {
    qname.rsplit("::").next().unwrap_or(qname)
}

fn run_group(ws: &Workspace, group: &str, out: &mut Vec<Finding>) {
    let files: Vec<_> = ws.group(group).collect();
    let env = GroupEnv::build(&files);

    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    let mut meta: BTreeMap<String, String> = BTreeMap::new();
    for (qname, info) in &env.fns {
        if info.in_test || info.def.body.is_none() {
            continue;
        }
        meta.insert(qname.clone(), info.file.rel.clone());
        facts.insert(qname.clone(), extract(&env, info));
    }

    // How many distinct functions acquire each lock — directly, or by
    // holding a guard returned from a wrapper. Locks with one acquirer
    // are serialization mutexes, exempt below.
    let mut acquirers: BTreeMap<String, BTreeSet<&str>> = BTreeMap::new();
    for (qname, f) in &facts {
        for lock in &f.direct {
            acquirers.entry(lock.clone()).or_default().insert(qname);
        }
        for ev in &f.events {
            if let Ev::CallLocal { qname: callee, bound: Some(_), .. } = ev {
                if env.returns_guard(callee) {
                    if let Some(cf) = facts.get(callee) {
                        for lock in &cf.direct {
                            acquirers.entry(lock.clone()).or_default().insert(qname);
                        }
                    }
                }
            }
        }
    }
    let contended = |lock: &str| acquirers.get(lock).is_some_and(|a| a.len() >= 2);

    // Fixpoint: which functions (transitively) contain a blocking call.
    // The blocking description propagates so findings can say *what*
    // blocks inside an opaque-looking callee.
    let mut blocks: BTreeMap<String, String> = BTreeMap::new();
    for (qname, f) in &facts {
        if let Some(Ev::Blocking { what, .. }) =
            f.events.iter().find(|e| matches!(e, Ev::Blocking { .. }))
        {
            blocks.insert(qname.clone(), what.clone());
        }
    }
    loop {
        let mut changed = false;
        let snapshot = blocks.clone();
        for (qname, f) in &facts {
            if blocks.contains_key(qname) {
                continue;
            }
            for callee in &f.callees {
                if let Some(what) = snapshot.get(callee) {
                    blocks.insert(qname.clone(), what.clone());
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Replay each function with guard-wrapper binding substituted in
    // (`let st = self.lock();` holds the wrapper's direct locks).
    for (qname, f) in &facts {
        let file = &meta[qname];
        let events: Vec<Ev> = f
            .events
            .iter()
            .flat_map(|e| match e {
                Ev::CallLocal { qname: c, line, bound: Some(b) } if env.returns_guard(c) => facts
                    .get(c)
                    .map(|cf| {
                        cf.direct
                            .iter()
                            .map(|l| Ev::Acquire {
                                lock: l.clone(),
                                line: *line,
                                bound: Some(b.clone()),
                            })
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default(),
                other => vec![other.clone()],
            })
            .collect();
        simulate(&events, |ev, held| {
            let held_contended: Vec<&str> =
                held.iter().filter(|h| contended(&h.lock)).map(|h| h.lock.as_str()).collect();
            if held_contended.is_empty() {
                return;
            }
            match ev {
                Ev::Blocking { what, line } => {
                    out.push(finding(file, *line, group, held_contended[0], what, None));
                }
                Ev::CallLocal { qname: callee, line, .. } => {
                    // A callee that itself acquires the held lock is
                    // lock-order's reentrancy finding, not ours.
                    if let Some(what) = blocks.get(callee) {
                        out.push(finding(
                            file,
                            *line,
                            group,
                            held_contended[0],
                            what,
                            Some(bare(callee)),
                        ));
                    }
                }
                _ => {}
            }
        });
    }
}

fn finding(
    file: &str,
    line: usize,
    group: &str,
    lock: &str,
    what: &str,
    via: Option<&str>,
) -> Finding {
    let message = match via {
        Some(callee) => format!(
            "calls `{callee}()`, which blocks on {what}, while holding `{group}::{lock}` — \
             every other thread contending that lock stalls behind the I/O"
        ),
        None => format!(
            "{what} while holding `{group}::{lock}` — every other thread contending \
             that lock stalls behind the I/O"
        ),
    };
    Finding {
        file: file.to_string(),
        line,
        check: "hold-blocking",
        message,
        hint: "compute under the lock, drop the guard, then do the blocking call".to_string(),
    }
}
