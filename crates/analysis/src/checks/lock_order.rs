//! Lock-order deadlock detector.
//!
//! For every crate group, the check extracts per-function lock
//! acquisition sequences from `.lock()` / `.read()` / `.write()` call
//! sites, plus an approximate intra-crate call graph (an identifier
//! applied to arguments whose name matches a function defined in the
//! same crate). From those it builds a lock-acquisition order graph —
//! an edge `A → B` means some path acquires `B` while holding `A` —
//! and fails on cycles, the classic two-thread deadlock shape. It also
//! flags *reentrant* acquisition (taking a `std::sync::Mutex` you
//! already hold), which self-deadlocks without needing a second thread.
//!
//! Guard lifetimes are tracked heuristically: a `let g = x.lock()…;`
//! binding holds the lock until `drop(g)` or the end of its block; an
//! unbound acquisition (`self.lock().field`) is a statement-scoped
//! temporary. A local `fn lock`/`read`/`write` wrapper (the
//! `self.lock()` idiom) counts as acquiring whatever its body acquires.
//! The approximations are deliberately conservative in what they track
//! and loose in name resolution (same-name methods merge), so any
//! finding deserves a look but may name more call sites than strictly
//! reach the cycle.

use std::collections::{BTreeMap, BTreeSet};

use super::{code_toks, fn_bodies};
use crate::lexer::{Kind, Tok};
use crate::{Check, Finding, Workspace};

/// The lock-order deadlock detector (`lock-order`).
pub struct LockOrder;

const ACQUIRE_METHODS: [&str; 3] = ["lock", "read", "write"];
/// Receivers that look like locks but are not mutexes.
const NOT_LOCKS: [&str; 3] = ["stdin", "stdout", "stderr"];

#[derive(Clone, Debug)]
enum Event {
    /// Acquire a named lock. `bound` carries the guard variable.
    Acquire {
        lock: String,
        line: usize,
        bound: Option<String>,
    },
    /// Call a function defined in the same group. `bound` carries the
    /// guard variable when the result is `let`-bound (a lock wrapper).
    Call {
        callee: String,
        line: usize,
        bound: Option<String>,
    },
    /// `drop(var)`.
    Drop {
        var: String,
    },
    /// Brace depth change.
    Open,
    Close,
}

#[derive(Default)]
struct FnInfo {
    file: String,
    line: usize,
    events: Vec<Event>,
    /// Locks acquired directly in this body.
    direct: BTreeSet<String>,
    /// Locks acquired here or in any (transitive) callee.
    exposed: BTreeSet<String>,
    callees: BTreeSet<String>,
}

impl Check for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "cycles in the lock-acquisition order graph and reentrant Mutex acquisition"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for group in ws.group_names() {
            self.run_group(ws, &group, out);
        }
    }
}

impl LockOrder {
    fn run_group(&self, ws: &Workspace, group: &str, out: &mut Vec<Finding>) {
        // Pass 1: extract events per function.
        let mut fns: BTreeMap<String, FnInfo> = BTreeMap::new();
        let files: Vec<_> = ws.group(group).collect();
        let names: BTreeSet<String> = files
            .iter()
            .flat_map(|f| {
                let toks = code_toks(f);
                fn_bodies(&toks).into_iter().map(|b| b.name)
            })
            .collect();
        for file in &files {
            if file.is_test_target() {
                continue;
            }
            let toks = code_toks(file);
            for body in fn_bodies(&toks) {
                if file.in_test(body.line) {
                    continue;
                }
                let info = fns.entry(body.name.clone()).or_default();
                if info.file.is_empty() {
                    info.file = file.rel.clone();
                    info.line = body.line;
                }
                extract_events(&toks, body.open, body.close, &names, &body.name, info);
            }
        }

        // Pass 2: fixpoint of exposed lock sets over the call graph.
        for info in fns.values_mut() {
            info.exposed = info.direct.clone();
        }
        loop {
            let mut changed = false;
            let snapshot: BTreeMap<String, BTreeSet<String>> =
                fns.iter().map(|(n, i)| (n.clone(), i.exposed.clone())).collect();
            for info in fns.values_mut() {
                for callee in &info.callees {
                    if let Some(locks) = snapshot.get(callee) {
                        for l in locks {
                            changed |= info.exposed.insert(l.clone());
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Pass 3: simulate each function, building order edges and
        // catching reentrancy.
        let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
        for (name, info) in &fns {
            let mut held: Vec<(String, Option<String>, usize, usize)> = Vec::new();
            let mut depth = 0usize;
            for ev in &info.events {
                match ev {
                    Event::Open => depth += 1,
                    Event::Close => {
                        depth = depth.saturating_sub(1);
                        held.retain(|(_, _, d, _)| *d <= depth);
                    }
                    Event::Drop { var } => {
                        held.retain(|(_, v, _, _)| v.as_deref() != Some(var.as_str()));
                    }
                    Event::Acquire { lock, line, bound } => {
                        for (h, _, _, hline) in &held {
                            if h == lock {
                                out.push(Finding {
                                    file: info.file.clone(),
                                    line: *line,
                                    check: "lock-order",
                                    message: format!(
                                        "`{group}::{lock}` re-acquired while already held \
                                         (guard taken at line {hline}) — \
                                         std::sync::Mutex self-deadlocks",
                                    ),
                                    hint: "reuse the held guard or drop it first".to_string(),
                                });
                            } else {
                                edges
                                    .entry((h.clone(), lock.clone()))
                                    .or_insert_with(|| (info.file.clone(), *line, name.clone()));
                            }
                        }
                        if let Some(var) = bound {
                            held.push((lock.clone(), Some(var.clone()), depth, *line));
                        }
                    }
                    Event::Call { callee, line, bound } => {
                        let Some(target) = fns.get(callee) else { continue };
                        for (h, _, _, _) in &held {
                            for l in &target.exposed {
                                if l == h {
                                    out.push(Finding {
                                        file: info.file.clone(),
                                        line: *line,
                                        check: "lock-order",
                                        message: format!(
                                            "calls `{callee}()` while holding \
                                             `{group}::{h}`, which `{callee}` \
                                             (re-)acquires — self-deadlock",
                                        ),
                                        hint: format!(
                                            "pass the held guard into `{callee}` or drop it \
                                             before the call"
                                        ),
                                    });
                                } else {
                                    edges.entry((h.clone(), l.clone())).or_insert_with(|| {
                                        (info.file.clone(), *line, name.clone())
                                    });
                                }
                            }
                        }
                        // A bound call to a lock-wrapper (`let st =
                        // self.lock()`) holds the wrapper's direct locks.
                        // Only `lock`-shaped names count: a `let r =
                        // self.write_checkpoint()` result is not a guard.
                        if let Some(var) = bound {
                            if ACQUIRE_METHODS.contains(&callee.as_str()) {
                                for l in &target.direct {
                                    held.push((l.clone(), Some(var.clone()), depth, *line));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Pass 4: cycles in the order graph.
        let graph: BTreeMap<&str, Vec<&str>> = {
            let mut g: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
            for (a, b) in edges.keys() {
                g.entry(a.as_str()).or_default().push(b.as_str());
            }
            g
        };
        let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
        for start in graph.keys() {
            let mut path = vec![*start];
            dfs_cycles(&graph, start, &mut path, &mut reported, &edges, group, out);
        }
    }
}

/// Depth-first walk over the order graph, reporting every elementary
/// cycle once (canonicalized by rotating the smallest lock name first).
fn dfs_cycles<'a>(
    graph: &BTreeMap<&'a str, Vec<&'a str>>,
    node: &str,
    path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    edges: &BTreeMap<(String, String), (String, usize, String)>,
    group: &str,
    out: &mut Vec<Finding>,
) {
    let Some(nexts) = graph.get(node) else { return };
    for next in nexts {
        if let Some(pos) = path.iter().position(|n| n == next) {
            // Cycle: path[pos..] + next. Canonicalize by rotating the
            // smallest lock name to the front.
            let cycle: Vec<String> = path[pos..].iter().map(|s| (*s).to_string()).collect();
            let mut canon = cycle.clone();
            if let Some(min_idx) =
                canon.iter().enumerate().min_by(|a, b| a.1.cmp(b.1)).map(|(i, _)| i)
            {
                canon.rotate_left(min_idx);
            }
            if reported.insert(canon.clone()) {
                let mut sites = Vec::new();
                for w in 0..cycle.len() {
                    let a = &cycle[w];
                    let b = &cycle[(w + 1) % cycle.len()];
                    if let Some((file, line, in_fn)) = edges.get(&(a.clone(), b.clone())) {
                        sites.push(format!("{a}→{b} in {in_fn}() at {file}:{line}"));
                    }
                }
                let (file, line, _) = edges
                    .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
                    .cloned()
                    .unwrap_or_default();
                out.push(Finding {
                    file,
                    line,
                    check: "lock-order",
                    message: format!(
                        "lock-order cycle in `{group}`: {} — two threads taking these \
                         in opposite order deadlock [{}]",
                        canon.join(" → "),
                        sites.join("; "),
                    ),
                    hint: "impose one global acquisition order (or merge the mutexes)".to_string(),
                });
            }
            continue;
        }
        path.push(next);
        dfs_cycles(graph, next, path, reported, edges, group, out);
        path.pop();
    }
}

/// Walks one function body, appending events to `info`.
fn extract_events(
    toks: &[&Tok],
    open: usize,
    close: usize,
    local_fns: &BTreeSet<String>,
    self_name: &str,
    info: &mut FnInfo,
) {
    let mut i = open;
    while i < close {
        let t = toks[i];
        if t.is_punct('{') {
            info.events.push(Event::Open);
        } else if t.is_punct('}') {
            info.events.push(Event::Close);
        } else if t.is_ident("drop")
            && i + 3 < close
            && toks[i + 1].is_punct('(')
            && toks[i + 2].kind == Kind::Ident
            && toks[i + 3].is_punct(')')
        {
            info.events.push(Event::Drop { var: toks[i + 2].text.clone() });
        } else if t.is_punct('.')
            && i + 3 < close
            && toks[i + 1].kind == Kind::Ident
            && ACQUIRE_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].is_punct('(')
            && toks[i + 3].is_punct(')')
        {
            // `.lock()` / `.read()` / `.write()` with no arguments.
            let method = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let recv = (i > 0 && toks[i - 1].kind == Kind::Ident).then(|| &toks[i - 1].text);
            match recv.map(String::as_str) {
                // `self.lock()` — a call to the crate's own wrapper.
                Some("self") if local_fns.contains(&method) && method != self_name => {
                    info.callees.insert(method.clone());
                    info.events.push(Event::Call {
                        callee: method,
                        line,
                        bound: binding_of(toks, i, open),
                    });
                }
                Some(name) if !NOT_LOCKS.contains(&name) => {
                    let bound = binding_of(toks, i, open);
                    info.direct.insert(name.to_string());
                    info.events.push(Event::Acquire { lock: name.to_string(), line, bound });
                }
                _ => {}
            }
            i += 4;
            continue;
        } else if t.kind == Kind::Ident
            && i + 1 < close
            && toks[i + 1].is_punct('(')
            && local_fns.contains(&t.text)
            && t.text != self_name
            && !ACQUIRE_METHODS.contains(&t.text.as_str())
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            info.callees.insert(t.text.clone());
            info.events.push(Event::Call { callee: t.text.clone(), line: t.line, bound: None });
        }
        i += 1;
    }
}

/// If the statement containing token `i` is a `let [mut] var = …`
/// binding, returns `var`. The statement start is the nearest `;`, `{`
/// or `}` before `i`.
fn binding_of(toks: &[&Tok], i: usize, floor: usize) -> Option<String> {
    let mut j = i;
    while j > floor {
        j -= 1;
        let t = toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            j += 1;
            break;
        }
    }
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let var = toks.get(k)?;
    (var.kind == Kind::Ident && toks.get(k + 1)?.is_punct('=')).then(|| var.text.clone())
}
