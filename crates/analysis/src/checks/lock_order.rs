//! Lock-order deadlock detector, on the syntax/dataflow layer.
//!
//! For every crate group, the check builds a [`GroupEnv`] (lock-typed
//! struct fields, functions resolved by qualified name) and extracts a
//! per-function event stream with real guard binding, drop and scope
//! tracking ([`crate::dataflow`]). From those it builds a
//! lock-acquisition order graph — an edge `A → B` means some path
//! acquires `B` while holding `A` — and fails on cycles, the classic
//! two-thread deadlock shape. It also flags *reentrant* acquisition
//! (taking a `std::sync::Mutex` you already hold), which self-deadlocks
//! without needing a second thread.
//!
//! Unlike the token-level version this replaces, callees resolve by
//! path (`Self::m`, `Type::m`, or a unique bare name — never same-name
//! merging), `.read()`/`.write()` only count on receivers known to be
//! `RwLock` fields, guards bound through `unwrap`/`expect`/`?` stay
//! bound while anything else is a statement temporary, and a guard
//! acquired inside a branch dies with that branch's scope.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::{extract, simulate, Ev, FnFacts, GroupEnv};
use crate::{Check, Finding, Workspace};

/// The lock-order deadlock detector (`lock-order`).
pub struct LockOrder;

impl Check for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "cycles in the lock-acquisition order graph and reentrant Mutex acquisition"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for group in ws.group_names() {
            run_group(ws, &group, out);
        }
    }
}

/// Display form of a qualified name: the bare function name.
fn bare(qname: &str) -> &str {
    qname.rsplit("::").next().unwrap_or(qname)
}

fn run_group(ws: &Workspace, group: &str, out: &mut Vec<Finding>) {
    let files: Vec<_> = ws.group(group).collect();
    let env = GroupEnv::build(&files);

    // Pass 1: extract events per function (non-test only).
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    let mut meta: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for (qname, info) in &env.fns {
        if info.in_test || info.def.body.is_none() {
            continue;
        }
        meta.insert(qname.clone(), (info.file.rel.clone(), info.def.line));
        facts.insert(qname.clone(), extract(&env, info));
    }

    // Pass 2: fixpoint of exposed lock sets over the call graph.
    let mut exposed: BTreeMap<String, BTreeSet<String>> =
        facts.iter().map(|(q, f)| (q.clone(), f.direct.clone())).collect();
    loop {
        let mut changed = false;
        let snapshot = exposed.clone();
        for (qname, f) in &facts {
            let mine = exposed.get_mut(qname).expect("seeded above");
            for callee in &f.callees {
                if let Some(locks) = snapshot.get(callee) {
                    for l in locks {
                        changed |= mine.insert(l.clone());
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: simulate each function, building order edges and catching
    // reentrancy.
    let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    for (qname, f) in &facts {
        let (file, _) = &meta[qname];
        simulate(&f.events, |ev, held| match ev {
            Ev::Acquire { lock, line, .. } => {
                for h in held {
                    if h.lock == *lock {
                        out.push(Finding {
                            file: file.clone(),
                            line: *line,
                            check: "lock-order",
                            message: format!(
                                "`{group}::{lock}` re-acquired while already held \
                                 (guard taken at line {}) — \
                                 std::sync::Mutex self-deadlocks",
                                h.line,
                            ),
                            hint: "reuse the held guard or drop it first".to_string(),
                        });
                    } else {
                        edges
                            .entry((h.lock.clone(), lock.clone()))
                            .or_insert_with(|| (file.clone(), *line, bare(qname).to_string()));
                    }
                }
            }
            Ev::CallLocal { qname: callee, line, .. } => {
                let Some(target) = exposed.get(callee) else { return };
                for h in held {
                    for l in target {
                        if *l == h.lock {
                            out.push(Finding {
                                file: file.clone(),
                                line: *line,
                                check: "lock-order",
                                message: format!(
                                    "calls `{callee}()` while holding \
                                     `{group}::{}`, which `{callee}` \
                                     (re-)acquires — self-deadlock",
                                    h.lock,
                                    callee = bare(callee),
                                ),
                                hint: format!(
                                    "pass the held guard into `{}` or drop it \
                                     before the call",
                                    bare(callee)
                                ),
                            });
                        } else {
                            edges
                                .entry((h.lock.clone(), l.clone()))
                                .or_insert_with(|| (file.clone(), *line, bare(qname).to_string()));
                        }
                    }
                }
            }
            _ => {}
        });
    }

    // A guard bound from a wrapper call (`let st = self.lock();`) holds
    // the wrapper's direct locks from the call until drop/scope end —
    // replay with those acquisitions substituted in.
    let mut wrapper_events: BTreeMap<String, Vec<Ev>> = BTreeMap::new();
    for (qname, f) in &facts {
        if f.events.iter().any(
            |e| matches!(e, Ev::CallLocal { qname: c, bound: Some(_), .. } if env.returns_guard(c)),
        ) {
            let replayed: Vec<Ev> = f
                .events
                .iter()
                .flat_map(|e| match e {
                    Ev::CallLocal { qname: c, line, bound: Some(b) } if env.returns_guard(c) => {
                        facts
                            .get(c)
                            .map(|cf| {
                                cf.direct
                                    .iter()
                                    .map(|l| Ev::Acquire {
                                        lock: l.clone(),
                                        line: *line,
                                        bound: Some(b.clone()),
                                    })
                                    .collect::<Vec<_>>()
                            })
                            .unwrap_or_default()
                    }
                    other => vec![other.clone()],
                })
                .collect();
            wrapper_events.insert(qname.clone(), replayed);
        }
    }
    for (qname, events) in &wrapper_events {
        let (file, _) = &meta[qname];
        simulate(events, |ev, held| {
            if let Ev::Acquire { lock, line, .. } = ev {
                for h in held {
                    if h.lock != *lock {
                        edges
                            .entry((h.lock.clone(), lock.clone()))
                            .or_insert_with(|| (file.clone(), *line, bare(qname).to_string()));
                    }
                }
            }
        });
    }

    // Pass 4: cycles in the order graph.
    let graph: BTreeMap<&str, Vec<&str>> = {
        let mut g: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            g.entry(a.as_str()).or_default().push(b.as_str());
        }
        g
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in graph.keys() {
        let mut path = vec![*start];
        dfs_cycles(&graph, start, &mut path, &mut reported, &edges, group, out);
    }
}

/// Depth-first walk over the order graph, reporting every elementary
/// cycle once (canonicalized by rotating the smallest lock name first).
fn dfs_cycles<'a>(
    graph: &BTreeMap<&'a str, Vec<&'a str>>,
    node: &str,
    path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    edges: &BTreeMap<(String, String), (String, usize, String)>,
    group: &str,
    out: &mut Vec<Finding>,
) {
    let Some(nexts) = graph.get(node) else { return };
    for next in nexts {
        if let Some(pos) = path.iter().position(|n| n == next) {
            // Cycle: path[pos..] + next. Canonicalize by rotating the
            // smallest lock name to the front.
            let cycle: Vec<String> = path[pos..].iter().map(|s| (*s).to_string()).collect();
            let mut canon = cycle.clone();
            if let Some(min_idx) =
                canon.iter().enumerate().min_by(|a, b| a.1.cmp(b.1)).map(|(i, _)| i)
            {
                canon.rotate_left(min_idx);
            }
            if reported.insert(canon.clone()) {
                let mut sites = Vec::new();
                for w in 0..cycle.len() {
                    let a = &cycle[w];
                    let b = &cycle[(w + 1) % cycle.len()];
                    if let Some((file, line, in_fn)) = edges.get(&(a.clone(), b.clone())) {
                        sites.push(format!("{a}→{b} in {in_fn}() at {file}:{line}"));
                    }
                }
                let (file, line, _) = edges
                    .get(&(cycle[0].clone(), cycle[1 % cycle.len()].clone()))
                    .cloned()
                    .unwrap_or_default();
                out.push(Finding {
                    file,
                    line,
                    check: "lock-order",
                    message: format!(
                        "lock-order cycle in `{group}`: {} — two threads taking these \
                         in opposite order deadlock [{}]",
                        canon.join(" → "),
                        sites.join("; "),
                    ),
                    hint: "impose one global acquisition order (or merge the mutexes)".to_string(),
                });
            }
            continue;
        }
        path.push(next);
        dfs_cycles(graph, next, path, reported, edges, group, out);
        path.pop();
    }
}
