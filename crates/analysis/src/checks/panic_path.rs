//! Panic-path lint for fleet hot loops.
//!
//! A panic in `crates/{tensor,campaign,dist,service}` does not just
//! kill a test — it poisons the coordinator or service state mutex and
//! tears down a fleet, and on the dist/service planes some panics are
//! reachable from worker-supplied wire data. This check flags
//! `unwrap()`, `expect("…")`, `panic!`-family macros, and (on the
//! dist/service planes only) slice/map indexing in non-test code.
//!
//! `assert!`/`debug_assert!` are deliberately not flagged: they state
//! contracts. Indexing is scoped to `dist` and `service` because the
//! tensor/campaign kernels are saturated with loop-bounded slice math
//! where an index panic is a local bug, not a remotely-reachable fleet
//! hazard. Sound-but-unprovable sites take a
//! `// analysis: allow(panic): why` comment.

use super::code_toks;
use crate::lexer::Kind;
use crate::{Check, Finding, Workspace};

/// The panic-path lint (`panic`).
pub struct PanicPath;

/// Groups in scope for unwrap/expect/panic!.
const HOT_GROUPS: [&str; 4] = ["tensor", "campaign", "dist", "service"];
/// Groups additionally in scope for the indexing rule.
const INDEX_GROUPS: [&str; 2] = ["dist", "service"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Check for PanicPath {
    fn id(&self) -> &'static str {
        "panic"
    }

    fn describe(&self) -> &'static str {
        "unwrap/expect/panic!/indexing on the tensor, campaign, dist and service hot paths"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !HOT_GROUPS.contains(&file.group.as_str()) || file.is_test_target() {
                continue;
            }
            let index_rule = INDEX_GROUPS.contains(&file.group.as_str());
            let toks = code_toks(file);
            for (i, t) in toks.iter().enumerate() {
                if file.in_test(t.line) {
                    continue;
                }
                let mut report = |line: usize, what: String, hint: &str| {
                    out.push(Finding {
                        file: file.rel.clone(),
                        line,
                        check: "panic",
                        message: what,
                        hint: hint.to_string(),
                    });
                };
                if t.is_punct('.') && i + 3 < toks.len() {
                    let (m, a1, a2) = (&toks[i + 1], &toks[i + 2], &toks[i + 3]);
                    if m.is_ident("unwrap") && a1.is_punct('(') && a2.is_punct(')') {
                        report(
                            m.line,
                            "`.unwrap()` on a hot path".to_string(),
                            "propagate the error, use a fallback, or justify with \
                             `// analysis: allow(panic): …`",
                        );
                    } else if m.is_ident("expect") && a1.is_punct('(') && a2.kind == Kind::Str {
                        report(
                            m.line,
                            format!("`.expect({})` on a hot path", a2.text),
                            "restructure with let-else / unwrap_or_else, or justify with \
                             `// analysis: allow(panic): …`",
                        );
                    }
                } else if t.kind == Kind::Ident
                    && PANIC_MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                {
                    report(
                        t.line,
                        format!("`{}!` on a hot path", t.text),
                        "return an error instead of panicking",
                    );
                } else if index_rule && t.is_punct('[') && i > 0 {
                    let prev = &toks[i - 1];
                    // A keyword before `[` means a pattern or type
                    // position (`let [a, b] = …`), not an indexing
                    // expression.
                    let keyword = prev.kind == Kind::Ident
                        && matches!(
                            prev.text.as_str(),
                            "let"
                                | "mut"
                                | "in"
                                | "return"
                                | "if"
                                | "else"
                                | "match"
                                | "ref"
                                | "move"
                                | "as"
                                | "break"
                                | "const"
                                | "static"
                        );
                    let indexable = prev.kind == Kind::Ident && !keyword
                        || prev.is_punct(')')
                        || prev.is_punct(']');
                    // `for x in arr[..]`-style expression positions only:
                    // types (`: [u8; 4]`), attributes (`#[…]`), array
                    // literals (`= […]`) and macros (`vec![…]`) have a
                    // non-expression token before the bracket.
                    if indexable {
                        report(
                            t.line,
                            "slice/map indexing on the dist/service plane can panic".to_string(),
                            "use .get()/.get_mut() with a graceful miss, or justify with \
                             `// analysis: allow(panic): …`",
                        );
                    }
                }
            }
        }
    }
}
