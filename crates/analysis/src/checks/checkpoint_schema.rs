//! Checkpoint-schema parity check.
//!
//! Each versioned checkpoint codec is a writer function building JSON
//! keys by hand and a reader function pulling the same keys back out —
//! in different functions, sometimes hundreds of lines apart. This
//! check extracts the key sets from both sides and fails on asymmetry:
//! a key written but never read is dead weight (or a reader that lost a
//! field), a key read but never written is a silent `None` on every
//! resume. The `version` key is exempt — readers sniff it rather than
//! require it, so old checkpoints still load.
//!
//! Covered codecs: `dist.json` (`DistState::doc`/`load` in
//! `coordinator.rs`), `tenant.json` (`Tenant::doc`/`load` in
//! `tenant.rs`), `coverage.json`+`meta.json` (`save`/`load` in
//! `campaign/src/checkpoint.rs`), and the campaign-spec echo
//! (`CampaignSpec::to_json`/`from_json` in `spec.rs`).
//!
//! The `events.jsonl` feed has no reader to diff against (consumers are
//! external), so it gets a required-key rule instead: every event the
//! `event()` builder emits must carry `event` and `seq` — the fields
//! the replay tooling sorts and dedups by.

use std::collections::BTreeMap;

use super::{code_toks, fn_bodies, snake_legal};
use crate::lexer::{Kind, Tok};
use crate::{Check, Finding, Workspace};

/// The checkpoint-schema parity check (`ckpt-schema`).
pub struct CheckpointSchema;

/// (label, file suffix, writer fn, reader fn)
const CODECS: [(&str, &str, &str, &str); 4] = [
    ("dist.json", "coordinator.rs", "doc", "load"),
    ("tenant.json", "tenant.rs", "doc", "load"),
    ("coverage.json", "checkpoint.rs", "save", "load"),
    ("spec", "spec.rs", "to_json", "from_json"),
];

/// Keys every `events.jsonl` record must carry, per the `event()`
/// builder in `tenant.rs`.
const EVENT_REQUIRED: [&str; 2] = ["event", "seq"];

impl Check for CheckpointSchema {
    fn id(&self) -> &'static str {
        "ckpt-schema"
    }

    fn describe(&self) -> &'static str {
        "writer/reader JSON key parity for the checkpoint codecs; events.jsonl required keys"
    }

    fn run(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for (label, file_suffix, writer, reader) in CODECS {
            let Some(file) = ws.file_named(file_suffix) else { continue };
            let toks = code_toks(file);
            let bodies = fn_bodies(&toks);
            let find = |name: &str| bodies.iter().find(|b| b.name == name && !file.in_test(b.line));
            let (Some(w), Some(r)) = (find(writer), find(reader)) else { continue };
            let written = written_keys(&toks[w.open..w.close]);
            let read = read_keys(&toks[r.open..r.close]);
            for (key, line) in &written {
                if *key != "version" && !read.contains_key(key) {
                    out.push(Finding {
                        file: file.rel.clone(),
                        line: *line,
                        check: "ckpt-schema",
                        message: format!(
                            "{label}: key `{key}` is written by `{writer}` but never read \
                             by `{reader}`"
                        ),
                        hint: "read it on resume or stop writing it".to_string(),
                    });
                }
            }
            for (key, line) in &read {
                if !written.contains_key(key) {
                    out.push(Finding {
                        file: file.rel.clone(),
                        line: *line,
                        check: "ckpt-schema",
                        message: format!(
                            "{label}: key `{key}` is read by `{reader}` but never written \
                             by `{writer}`"
                        ),
                        hint: "the field silently defaults on every resume".to_string(),
                    });
                }
            }
        }
        check_event_feed(ws, out);
    }
}

/// The `events.jsonl` rule: the `event()` builder in `tenant.rs` must
/// emit every required key.
fn check_event_feed(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(file) = ws.file_named("tenant.rs") else { return };
    let toks = code_toks(file);
    let bodies = fn_bodies(&toks);
    let Some(b) = bodies.iter().find(|b| b.name == "event" && !file.in_test(b.line)) else {
        return;
    };
    let written = written_keys(&toks[b.open..b.close]);
    for key in EVENT_REQUIRED {
        if !written.contains_key(key) {
            out.push(Finding {
                file: file.rel.clone(),
                line: b.line,
                check: "ckpt-schema",
                message: format!(
                    "events.jsonl: `event()` no longer emits required key `{key}` — \
                     replay tooling sorts and dedups the feed by it"
                ),
                hint: format!("emit `{key}` in every event record"),
            });
        }
    }
}

/// JSON keys a writer emits: the string in `("key", …)` tuple position.
/// Error strings never match — they are not snake_case or not directly
/// after `(` with a `,` behind them.
fn written_keys(toks: &[&Tok]) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].is_punct('(') && toks[i + 1].kind == Kind::Str && toks[i + 2].is_punct(',') {
            if let Some(key) = toks[i + 1].str_value() {
                if snake_legal(key) {
                    keys.entry(key.to_string()).or_insert(toks[i + 1].line);
                }
            }
        }
    }
    keys
}

/// JSON keys a reader consumes: the first string argument of `get(…)`
/// or a `field_…(…, "key")` helper.
fn read_keys(toks: &[&Tok]) -> BTreeMap<String, usize> {
    let mut keys = BTreeMap::new();
    for i in 0..toks.len().saturating_sub(1) {
        let is_getter = toks[i].kind == Kind::Ident
            && (toks[i].text == "get" || toks[i].text.starts_with("field_"))
            && toks[i + 1].is_punct('(');
        if !is_getter {
            continue;
        }
        let mut depth = 0i32;
        for t in &toks[i + 1..] {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == Kind::Str && depth == 1 {
                if let Some(key) = t.str_value() {
                    if snake_legal(key) {
                        keys.entry(key.to_string()).or_insert(t.line);
                    }
                }
                break;
            }
        }
    }
    keys
}
