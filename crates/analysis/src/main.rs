//! Command-line driver for `dx-analysis`.
//!
//! ```text
//! cargo run -p dx-analysis -- [--fix-hints] [--expect FILE] [paths…]
//! ```
//!
//! With no paths, scans the enclosing cargo workspace (found by walking
//! up from the current directory to the first `Cargo.toml` containing
//! `[workspace]`). Exits non-zero when any finding is reported. With
//! `--expect FILE`, instead compares the findings against the expected
//! lines in FILE (the fixture-regression mode CI uses) and fails on any
//! difference. With `--parse-stats`, reports how many files the syntax
//! layer parsed and fails if any fell back to token mode — the CI
//! self-scan that keeps the AST checks honest.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dx_analysis::{checks, run_all, workspace_root, Finding, Workspace};

fn main() -> ExitCode {
    let mut fix_hints = false;
    let mut parse_stats = false;
    let mut expect: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix-hints" => fix_hints = true,
            "--parse-stats" => parse_stats = true,
            "--expect" => match args.next() {
                Some(f) => expect = Some(PathBuf::from(f)),
                None => {
                    eprintln!("error: --expect requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown flag `{arg}` (try --help)");
                return ExitCode::FAILURE;
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    if paths.is_empty() {
        let cwd = std::env::current_dir().unwrap_or_default();
        let Some(root) = workspace_root(&cwd) else {
            eprintln!("error: no enclosing cargo workspace; pass a path to scan");
            return ExitCode::FAILURE;
        };
        if std::env::set_current_dir(&root).is_err() {
            eprintln!("error: cannot enter workspace root {}", root.display());
            return ExitCode::FAILURE;
        }
        paths.push(PathBuf::from("."));
    }

    let mut findings = Vec::new();
    let mut parsed = 0usize;
    let mut fallbacks: Vec<(String, String)> = Vec::new();
    for path in &paths {
        match Workspace::load(path) {
            Ok(ws) => {
                for f in &ws.files {
                    match &f.parse_err {
                        None => parsed += 1,
                        Some(e) => fallbacks.push((f.rel.clone(), e.clone())),
                    }
                }
                findings.extend(run_all(&ws));
            }
            Err(err) => {
                eprintln!("error: cannot scan {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if parse_stats {
        println!("dx-analysis: {parsed} file(s) parsed, {} fallback(s)", fallbacks.len());
        for (rel, why) in &fallbacks {
            println!("  token-mode fallback: {rel}: {why}");
        }
        return if fallbacks.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check).cmp(&(b.file.as_str(), b.line, b.check))
    });

    if let Some(expect) = expect {
        return check_expectations(&findings, &expect);
    }
    for f in &findings {
        println!("{f}");
        if fix_hints && !f.hint.is_empty() {
            println!("    hint: {}", f.hint);
        }
    }
    if findings.is_empty() {
        eprintln!("dx-analysis: clean ({} checks)", checks::all().len());
        ExitCode::SUCCESS
    } else {
        eprintln!("dx-analysis: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Fixture-regression mode: the findings must match `expect` exactly.
fn check_expectations(findings: &[Finding], expect: &Path) -> ExitCode {
    let want = match std::fs::read_to_string(expect) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", expect.display());
            return ExitCode::FAILURE;
        }
    };
    let want: Vec<&str> = want.lines().filter(|l| !l.trim().is_empty()).collect();
    let got: Vec<String> = findings.iter().map(ToString::to_string).collect();
    let mut ok = true;
    for line in &want {
        if !got.iter().any(|g| g == line) {
            eprintln!("missing expected finding: {line}");
            ok = false;
        }
    }
    for line in &got {
        if !want.contains(&line.as_str()) {
            eprintln!("unexpected finding: {line}");
            ok = false;
        }
    }
    if ok {
        eprintln!("dx-analysis: {} findings match {}", got.len(), expect.display());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "dx-analysis — in-tree whitebox static analysis\n\n\
         usage: cargo run -p dx-analysis -- [--fix-hints] [--parse-stats] [--expect FILE] [paths...]\n\n\
         With no paths, scans the enclosing cargo workspace and exits\n\
         non-zero on any finding. --fix-hints prints a remediation hint\n\
         under each finding. --expect FILE compares findings against the\n\
         expected lines in FILE (fixture-regression mode). --parse-stats\n\
         reports syntax-layer coverage and fails if any file fell back\n\
         to token mode.\n\nchecks:"
    );
    for check in checks::all() {
        println!("  {:<15} {}", check.id(), check.describe());
    }
}
