//! Forward intraprocedural dataflow over the [`crate::ast`] layer.
//!
//! The checks that reason about lock guards ([`crate::checks`]'s
//! `lock-order` and `hold-blocking`) share everything here: a per-group
//! environment of lock-typed fields and resolved functions
//! ([`GroupEnv`]), a per-function event stream extracted by a single
//! AST walk ([`FnFacts`]), and a held-stack simulator that replays
//! those events with lexical scoping ([`simulate`]).
//!
//! The walk is a *may*-analysis: branches and match arms are walked
//! sequentially under a scope push/pop, so a guard acquired in one arm
//! never leaks into its sibling, and anything acquired before the
//! branch is held in every arm. Guard *values* are tracked through the
//! transparent adapters (`unwrap`, `expect`, `unwrap_or_else`, `?`):
//! a lock result that flows through anything else is a statement
//! temporary, released at the end of its statement.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{self, Arm, Block, Expr, FnDef, LetStmt, Stmt};
use crate::SourceFile;

/// What flavor of lock a field is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
}

/// One event in a function's abstract execution, in source order.
#[derive(Clone, Debug)]
pub enum Ev {
    /// A lock acquisition. `bound` is the guard's binding name when the
    /// acquisition's result was let-bound; `None` for statement temps.
    Acquire {
        /// Canonical lock name (last path segment of the place).
        lock: String,
        /// Line of the acquiring call.
        line: usize,
        /// The let-bound guard variable, if any.
        bound: Option<String>,
    },
    /// A call to a function resolved within the group.
    CallLocal {
        /// The callee's qualified name (`Type::method` or bare).
        qname: String,
        /// Line of the call.
        line: usize,
        /// The let binding receiving the result, if any — used to track
        /// guards returned by wrapper functions like `self.lock()`.
        bound: Option<String>,
    },
    /// A call that can block (I/O, sleep, channel recv, frame I/O).
    Blocking {
        /// Human-readable description of the blocking operation.
        what: String,
        /// Line of the call.
        line: usize,
    },
    /// An explicit `drop(var)`.
    Drop {
        /// The dropped variable.
        var: String,
    },
    /// Entering a lexical scope (block, branch arm, loop body).
    PushScope,
    /// Leaving the matching lexical scope.
    PopScope,
    /// End of a statement: releases statement-temporary guards.
    StmtEnd,
}

/// A function's extracted dataflow facts.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// The event stream, in source order.
    pub events: Vec<Ev>,
    /// Locks this function acquires directly (any path).
    pub direct: BTreeSet<String>,
    /// Qualified names of group-local callees.
    pub callees: BTreeSet<String>,
}

/// One function known to a [`GroupEnv`].
pub struct FnInfo<'a> {
    /// The definition.
    pub def: &'a FnDef,
    /// File the definition lives in.
    pub file: &'a SourceFile,
    /// The enclosing impl type, if any.
    pub self_ty: Option<String>,
    /// Whether the definition sits in test code.
    pub in_test: bool,
}

/// Per-group environment: lock fields, hash-typed fields, and functions
/// resolved by qualified name.
pub struct GroupEnv<'a> {
    /// Lock-typed struct fields: field name → kind.
    pub lock_fields: BTreeMap<String, LockKind>,
    /// `HashMap`/`HashSet`-typed struct fields.
    pub hash_fields: BTreeSet<String>,
    /// Functions by qualified name (`Type::name`, or bare `name`).
    pub fns: BTreeMap<String, FnInfo<'a>>,
    /// Bare name → qualified names, for unique-candidate resolution.
    pub by_bare: BTreeMap<String, Vec<String>>,
}

impl<'a> GroupEnv<'a> {
    /// Builds the environment from one group's files.
    pub fn build(files: &[&'a SourceFile]) -> Self {
        let mut lock_fields = BTreeMap::new();
        let mut hash_fields = BTreeSet::new();
        let mut fns: BTreeMap<String, FnInfo<'a>> = BTreeMap::new();
        let mut by_bare: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for file in files {
            let Some(tree) = file.ast.as_ref() else { continue };
            ast::for_each_struct(tree, &mut |s| {
                for f in &s.fields {
                    if f.ty.contains("Mutex<") {
                        lock_fields.insert(f.name.clone(), LockKind::Mutex);
                    } else if f.ty.contains("RwLock<") {
                        lock_fields.insert(f.name.clone(), LockKind::RwLock);
                    }
                    if f.ty.contains("HashMap<") || f.ty.contains("HashSet<") {
                        hash_fields.insert(f.name.clone());
                    }
                }
            });
            ast::for_each_fn(tree, &mut |self_ty, def| {
                let qname = match self_ty {
                    Some(ty) => format!("{ty}::{}", def.name),
                    None => def.name.clone(),
                };
                let info = FnInfo {
                    def,
                    file,
                    self_ty: self_ty.map(str::to_string),
                    in_test: file.in_test(def.line) || file.is_test_target(),
                };
                by_bare.entry(def.name.clone()).or_default().push(qname.clone());
                fns.insert(qname, info);
            });
        }
        Self { lock_fields, hash_fields, fns, by_bare }
    }

    /// Whether `qname` names a function returning a lock guard — a
    /// wrapper like `fn lock(&self) -> MutexGuard<'_, State>`.
    pub fn returns_guard(&self, qname: &str) -> bool {
        self.fns.get(qname).is_some_and(|f| {
            let r = &f.def.ret;
            r.contains("MutexGuard<")
                || r.contains("RwLockReadGuard<")
                || r.contains("RwLockWriteGuard<")
        })
    }

    /// Resolves a callee expression to a group-local qualified name.
    /// `self.m()` / `Self::m()` resolve through `self_ty`; `Type::m()`
    /// resolves directly; a bare `f()` resolves only when exactly one
    /// function in the group has that name — no same-name merging.
    pub fn resolve(&self, self_ty: Option<&str>, segs: &[String]) -> Option<String> {
        let qname = match segs {
            [one] => {
                let cands = self.by_bare.get(one)?;
                if cands.len() == 1 {
                    cands[0].clone()
                } else if let Some(ty) = self_ty {
                    // Prefer a same-impl method among ambiguous names.
                    let q = format!("{ty}::{one}");
                    if self.fns.contains_key(&q) {
                        q
                    } else {
                        return None;
                    }
                } else {
                    return None;
                }
            }
            [ty, name] if *ty == "Self" => format!("{}::{name}", self_ty?),
            [.., ty, name] => format!("{ty}::{name}"),
            _ => return None,
        };
        self.fns.contains_key(&qname).then_some(qname)
    }
}

/// Extracts the event stream for one function.
pub fn extract<'a>(env: &GroupEnv<'a>, info: &FnInfo<'a>) -> FnFacts {
    let mut w = Walker {
        env,
        self_ty: info.self_ty.clone(),
        facts: FnFacts::default(),
        scopes: vec![Scope::default()],
    };
    // Parameters typed as locks or blocking handles seed the scope.
    for p in &info.def.params {
        w.note_typed(&p.name, &p.ty);
    }
    if let Some(body) = &info.def.body {
        w.walk_block(body, false);
    }
    w.facts
}

/// One lexical scope's local knowledge.
#[derive(Clone, Debug, Default)]
struct Scope {
    /// Local alias → canonical place (`corpus` → `self.corpus`).
    aliases: BTreeMap<String, String>,
    /// Locals whose type marks them as blocking I/O handles
    /// (`TcpStream`, `File`) or frame readers.
    io_handles: BTreeMap<String, &'static str>,
    /// Locals that are themselves locks (`let m = Mutex::new(..)`).
    local_locks: BTreeSet<String>,
}

/// What a walked expression evaluates to, as far as guard tracking
/// cares.
enum Val {
    /// A fresh lock acquisition; index of its `Acquire` event.
    Guard(usize),
    /// The result of a group-local call; index of its `CallLocal` event.
    CallRes(usize),
    /// Anything else.
    Plain,
}

struct Walker<'w, 'a> {
    env: &'w GroupEnv<'a>,
    self_ty: Option<String>,
    facts: FnFacts,
    scopes: Vec<Scope>,
}

impl Walker<'_, '_> {
    fn push(&mut self) {
        self.scopes.push(Scope::default());
        self.facts.events.push(Ev::PushScope);
    }

    fn pop(&mut self) {
        self.scopes.pop();
        self.facts.events.push(Ev::PopScope);
    }

    fn note_typed(&mut self, name: &str, ty: &str) {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if ty.contains("Mutex<") || ty.contains("RwLock<") {
            scope.local_locks.insert(name.to_string());
        } else if ty.contains("TcpStream") || ty.contains("File") || ty.contains("FrameReader") {
            let what: &'static str = if ty.contains("FrameReader") {
                "a FrameReader"
            } else if ty.contains("TcpStream") {
                "a TcpStream"
            } else {
                "a File"
            };
            scope.io_handles.insert(name.to_string(), what);
        }
    }

    /// Resolves a name through the scope stack's alias maps.
    fn resolve_alias(&self, name: &str) -> Option<String> {
        self.scopes.iter().rev().find_map(|s| s.aliases.get(name).cloned())
    }

    fn lookup_io(&self, name: &str) -> Option<&'static str> {
        self.scopes.iter().rev().find_map(|s| s.io_handles.get(name).copied())
    }

    fn is_local_lock(&self, name: &str) -> bool {
        self.scopes.iter().rev().any(|s| s.local_locks.contains(name))
    }

    /// The canonical place text of an expression, if it is a simple
    /// place: `self.corpus` → `self.corpus`, alias chains resolved.
    fn place_of(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Path { segs, .. } => {
                let joined = segs.join("::");
                if segs.len() == 1 {
                    if let Some(target) = self.resolve_alias(&segs[0]) {
                        return Some(target);
                    }
                }
                Some(joined)
            }
            Expr::Field { recv, name, .. } => {
                let base = self.place_of(recv)?;
                Some(format!("{base}.{name}"))
            }
            Expr::Unary { inner } | Expr::Try { inner } => self.place_of(inner),
            Expr::Tuple { items, .. } if items.len() == 1 => self.place_of(&items[0]),
            _ => None,
        }
    }

    /// Whether a resolved place names a lock: a lock-typed field
    /// (`self.state` → field `state`), a local lock, or — for `.lock()`
    /// only — an unknown single-segment place.
    fn lock_name_of(&self, place: &str, method: &str) -> Option<String> {
        let last = place.rsplit(['.', ':']).next().unwrap_or(place).to_string();
        if let Some(kind) = self.env.lock_fields.get(&last) {
            let ok = match kind {
                LockKind::Mutex => method == "lock",
                LockKind::RwLock => method == "read" || method == "write",
            };
            return ok.then_some(last);
        }
        if self.is_local_lock(&last) {
            return (method == "lock" || method == "read" || method == "write").then_some(last);
        }
        // Unknown receiver: only `.lock()` is lock-ish enough to assume.
        (method == "lock").then_some(last)
    }

    fn walk_block(&mut self, b: &Block, scoped: bool) {
        if scoped {
            self.push();
        }
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let(l) => self.walk_let(l),
                Stmt::Expr(e) => {
                    self.walk_expr(e);
                    self.facts.events.push(Ev::StmtEnd);
                }
                Stmt::Item(_) => {}
            }
        }
        if scoped {
            self.pop();
        }
    }

    fn walk_let(&mut self, l: &LetStmt) {
        let single = (l.names.len() == 1).then(|| l.names[0].clone());
        if let Some(init) = &l.init {
            // Alias tracking: `let corpus = &self.corpus;`.
            if let (Some(name), Some(place)) = (&single, self.place_of(init)) {
                if place != *name {
                    let scope = self.scopes.last_mut().expect("scope stack never empty");
                    scope.aliases.insert(name.clone(), place);
                }
            }
            let val = self.walk_expr(init);
            match val {
                Val::Guard(idx) => {
                    if let (Some(name), Some(Ev::Acquire { bound, .. })) =
                        (&single, self.facts.events.get_mut(idx))
                    {
                        *bound = Some(name.clone());
                    }
                }
                Val::CallRes(idx) => {
                    if let (Some(name), Some(Ev::CallLocal { bound, qname, .. })) =
                        (&single, self.facts.events.get_mut(idx))
                    {
                        if self.env.returns_guard(qname) {
                            *bound = Some(name.clone());
                        }
                    }
                }
                Val::Plain => {}
            }
            // Local type knowledge from ascription or constructor.
            if let Some(name) = &single {
                if !l.ty.is_empty() {
                    self.note_typed(name, &l.ty);
                } else if let Some(ctor) = constructed_type(init) {
                    self.note_typed(name, &ctor);
                }
            }
        }
        if let Some(else_block) = &l.else_block {
            self.walk_block(else_block, true);
        }
        self.facts.events.push(Ev::StmtEnd);
    }

    /// Walks an expression, emitting events; returns what it evaluates
    /// to for guard-binding purposes.
    fn walk_expr(&mut self, e: &Expr) -> Val {
        match e {
            Expr::MethodCall { recv, method, args, line } => {
                self.walk_method(recv, method, args, *line)
            }
            Expr::Call { callee, args, line } => self.walk_call(callee, args, *line),
            Expr::Macro { args, .. } => {
                for a in args {
                    self.walk_expr(a);
                }
                Val::Plain
            }
            Expr::Try { inner } | Expr::Unary { inner } => self.walk_expr(inner),
            Expr::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
                Val::Plain
            }
            Expr::Assign { target, value, .. } => {
                self.walk_expr(target);
                self.walk_expr(value);
                Val::Plain
            }
            Expr::Field { recv, .. } | Expr::Index { recv, .. } => {
                self.walk_expr(recv);
                Val::Plain
            }
            Expr::Block(b) => {
                self.walk_block(b, true);
                Val::Plain
            }
            Expr::If { cond, then, alt, .. } => {
                self.walk_expr(cond);
                self.walk_block(then, true);
                if let Some(alt) = alt {
                    self.walk_expr(alt);
                }
                Val::Plain
            }
            Expr::Match { scrutinee, arms, .. } => {
                self.walk_expr(scrutinee);
                for Arm { guard, body, .. } in arms {
                    self.push();
                    if let Some(g) = guard {
                        self.walk_expr(g);
                    }
                    self.walk_expr(body);
                    self.pop();
                }
                Val::Plain
            }
            Expr::While { cond, body, .. } => {
                self.walk_expr(cond);
                self.walk_block(body, true);
                Val::Plain
            }
            Expr::Loop { body, .. } => {
                self.walk_block(body, true);
                Val::Plain
            }
            Expr::For { iter, body, .. } => {
                self.walk_expr(iter);
                self.walk_block(body, true);
                Val::Plain
            }
            Expr::Closure { body, .. } => {
                // Closure bodies run in the enclosing context as far as
                // held guards go (they may run inline); `thread::spawn`
                // arguments are special-cased in walk_call.
                self.push();
                self.walk_expr(body);
                self.pop();
                Val::Plain
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.walk_expr(v);
                }
                Val::Plain
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for i in items {
                    self.walk_expr(i);
                }
                Val::Plain
            }
            Expr::Ret { inner, .. } => {
                if let Some(i) = inner {
                    self.walk_expr(i);
                }
                Val::Plain
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Other { .. } => Val::Plain,
        }
    }

    fn walk_method(&mut self, recv: &Expr, method: &str, args: &[Expr], line: usize) -> Val {
        // Args evaluate before the call blocks/acquires.
        for a in args {
            self.walk_expr(a);
        }
        // `self.lock()`-style wrapper methods resolve as local calls,
        // never as acquisitions of a lock named `self`.
        if let Expr::Path { segs, .. } = recv {
            if segs.len() == 1 && segs[0] == "self" {
                if let Some(q) = self.env.resolve(self.self_ty.as_deref(), &[method.to_string()]) {
                    self.facts.callees.insert(q.clone());
                    self.facts.events.push(Ev::CallLocal { qname: q, line, bound: None });
                    return Val::CallRes(self.facts.events.len() - 1);
                }
            }
        }
        // Acquisition?
        if matches!(method, "lock" | "read" | "write") && args.is_empty() {
            if let Some(place) = self.place_of(recv) {
                if let Some(lock) = self.lock_name_of(&place, method) {
                    self.facts.direct.insert(lock.clone());
                    self.facts.events.push(Ev::Acquire { lock, line, bound: None });
                    return Val::Guard(self.facts.events.len() - 1);
                }
            }
        }
        // Blocking methods.
        if let Some(what) = self.blocking_method(recv, method, args) {
            self.facts.events.push(Ev::Blocking { what, line });
            self.walk_expr(recv);
            return Val::Plain;
        }
        // Transparent adapters pass the guard value through.
        if matches!(method, "unwrap" | "expect" | "unwrap_or_else") {
            let inner = self.walk_expr(recv);
            return inner;
        }
        self.walk_expr(recv);
        Val::Plain
    }

    /// Whether `recv.method(args)` is a blocking primitive.
    fn blocking_method(&self, recv: &Expr, method: &str, args: &[Expr]) -> Option<String> {
        match method {
            "recv" | "recv_timeout" => Some(format!("channel `{method}()`")),
            "accept" => Some("`accept()` on a listener".to_string()),
            "join" if args.is_empty() => Some("`join()` on a thread handle".to_string()),
            "poll" => {
                let place = self.place_of(recv)?;
                let last = place.rsplit('.').next().unwrap_or(&place);
                (self.lookup_io(last) == Some("a FrameReader"))
                    .then(|| "a `FrameReader::poll` read".to_string())
            }
            "read" | "write" | "read_exact" | "write_all" | "flush" => {
                // Distinguish from RwLock read/write: those take no
                // args and resolve as acquisitions above; these need an
                // I/O-typed receiver.
                let place = self.place_of(recv)?;
                let last = place.rsplit('.').next().unwrap_or(&place);
                let what = self.lookup_io(last)?;
                if what == "a FrameReader" {
                    return None;
                }
                Some(format!("`{method}()` on {what}"))
            }
            _ => None,
        }
    }

    fn walk_call(&mut self, callee: &Expr, args: &[Expr], line: usize) -> Val {
        let segs: Option<&[String]> = match callee {
            Expr::Path { segs, .. } => Some(segs),
            _ => None,
        };
        // `thread::spawn(closure)`: the closure runs on another thread,
        // with nothing from this one held.
        if let Some(s) = segs {
            if s.last().is_some_and(|l| l == "spawn") {
                return Val::Plain;
            }
        }
        for a in args {
            self.walk_expr(a);
        }
        if let Some(s) = segs {
            let last = s.last().map(String::as_str).unwrap_or("");
            // `drop(guard)`.
            if last == "drop" && s.len() == 1 {
                if let Some(Expr::Path { segs: var, .. }) = args.first() {
                    if var.len() == 1 {
                        self.facts.events.push(Ev::Drop { var: var[0].clone() });
                    }
                }
                return Val::Plain;
            }
            // Blocking free functions.
            let blocking = match last {
                "write_frame" => Some("`write_frame` socket I/O".to_string()),
                "read_frame" => Some("`read_frame` socket I/O".to_string()),
                "write_atomic" => Some("`write_atomic` file I/O".to_string()),
                "save" if s.len() >= 2 && s[s.len() - 2] == "checkpoint" => {
                    Some("`checkpoint::save` file I/O".to_string())
                }
                "sleep" if s.len() >= 2 && s[s.len() - 2] == "thread" => {
                    Some("`thread::sleep`".to_string())
                }
                _ => None,
            };
            if let Some(what) = blocking {
                self.facts.events.push(Ev::Blocking { what, line });
                return Val::Plain;
            }
            // Group-local call.
            if let Some(q) = self.env.resolve(self.self_ty.as_deref(), s) {
                self.facts.callees.insert(q.clone());
                self.facts.events.push(Ev::CallLocal { qname: q, line, bound: None });
                return Val::CallRes(self.facts.events.len() - 1);
            }
        } else {
            self.walk_expr(callee);
        }
        Val::Plain
    }
}

/// The constructed type of an initializer, when recognizable:
/// `Mutex::new(x)` → `Mutex<_>`, `FrameReader::with_cap(n)` →
/// `FrameReader`, `HashMap::new()` → `HashMap<_>`, `File::open(..)`.
fn constructed_type(e: &Expr) -> Option<String> {
    match e {
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if segs.len() >= 2 {
                    let ty = &segs[segs.len() - 2];
                    let ctor = &segs[segs.len() - 1];
                    let known = matches!(
                        ty.as_str(),
                        "Mutex"
                            | "RwLock"
                            | "HashMap"
                            | "HashSet"
                            | "FrameReader"
                            | "File"
                            | "TcpStream"
                    );
                    let ctor_ok = matches!(
                        ctor.as_str(),
                        "new"
                            | "with_cap"
                            | "with_capacity"
                            | "open"
                            | "create"
                            | "connect"
                            | "default"
                            | "from_iter"
                    );
                    if known && ctor_ok {
                        return Some(format!("{ty}<_>"));
                    }
                }
            }
            None
        }
        Expr::MethodCall { recv, method, .. }
            if matches!(method.as_str(), "unwrap" | "expect" | "unwrap_or_else") =>
        {
            constructed_type(recv)
        }
        Expr::Try { inner } => constructed_type(inner),
        _ => None,
    }
}

/// One held guard during simulation.
#[derive(Clone, Debug)]
pub struct Held {
    /// The lock's canonical name.
    pub lock: String,
    /// Line where it was acquired.
    pub line: usize,
    /// The binding name, `None` for statement temporaries.
    pub bound: Option<String>,
    /// Scope depth at acquisition (guards die with their scope).
    pub depth: usize,
}

/// Replays a function's events, maintaining the held-guard stack, and
/// calls `on_event` before applying each event with the current stack.
pub fn simulate(events: &[Ev], mut on_event: impl FnMut(&Ev, &[Held])) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    for ev in events {
        on_event(ev, &held);
        match ev {
            Ev::Acquire { lock, line, bound } => {
                held.push(Held { lock: lock.clone(), line: *line, bound: bound.clone(), depth });
            }
            Ev::CallLocal { .. } | Ev::Blocking { .. } => {}
            Ev::Drop { var } => {
                if let Some(i) = held.iter().rposition(|h| h.bound.as_deref() == Some(var)) {
                    held.remove(i);
                }
            }
            Ev::PushScope => depth += 1,
            Ev::PopScope => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
            }
            Ev::StmtEnd => {
                held.retain(|h| h.bound.is_some());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter().map(|(rel, text)| SourceFile::new((*rel).into(), (*text).into())).collect()
    }

    fn facts_of(src: &str, fn_name: &str) -> (Vec<Ev>, BTreeSet<String>) {
        let files = env_files(&[("crates/x/src/lib.rs", src)]);
        let refs: Vec<&SourceFile> = files.iter().collect();
        let env = GroupEnv::build(&refs);
        let (_, info) = env
            .fns
            .iter()
            .find(|(q, _)| q.rsplit("::").next() == Some(fn_name) || *q == fn_name)
            .expect("fn exists");
        let f = extract(&env, info);
        (f.events, f.direct)
    }

    const STATE: &str =
        "pub struct S { state: std::sync::Mutex<u32>, stats: std::sync::Mutex<u32> }\n";

    #[test]
    fn let_bound_guard_survives_statements_temp_does_not() {
        let src = format!(
            "{STATE}impl S {{ fn f(&self) {{ let g = self.state.lock().unwrap(); self.stats.lock().unwrap().clone(); touch(); }} }}"
        );
        let (events, direct) = facts_of(&src, "f");
        assert!(direct.contains("state") && direct.contains("stats"));
        // Simulate: at the second acquire, `state` is held (bound);
        // after its StmtEnd the temp `stats` guard is gone.
        let mut at_second = Vec::new();
        let mut seen = 0;
        simulate(&events, |ev, held| {
            if let Ev::Acquire { .. } = ev {
                seen += 1;
                if seen == 2 {
                    at_second = held.iter().map(|h| h.lock.clone()).collect();
                }
            }
        });
        assert_eq!(at_second, vec!["state"]);
    }

    #[test]
    fn alias_resolves_to_field_lock() {
        let src = format!(
            "{STATE}impl S {{ fn f(&self) {{ let corpus = &self.state; let c = corpus.lock().unwrap(); }} }}"
        );
        let (_, direct) = facts_of(&src, "f");
        assert!(direct.contains("state"), "{direct:?}");
    }

    #[test]
    fn drop_releases_the_named_guard() {
        let src = format!(
            "{STATE}impl S {{ fn f(&self) {{ let g = self.state.lock().unwrap(); drop(g); let h = self.stats.lock().unwrap(); }} }}"
        );
        let (events, _) = facts_of(&src, "f");
        let mut held_at_last = vec!["sentinel".to_string()];
        let mut acquires = 0;
        simulate(&events, |ev, held| {
            if let Ev::Acquire { .. } = ev {
                acquires += 1;
                if acquires == 2 {
                    held_at_last = held.iter().map(|h| h.lock.clone()).collect();
                }
            }
        });
        assert!(held_at_last.is_empty(), "{held_at_last:?}");
    }

    #[test]
    fn branch_scoped_guard_does_not_leak() {
        let src = format!(
            "{STATE}impl S {{ fn f(&self, c: bool) {{ if c {{ let g = self.state.lock().unwrap(); g.clone(); }} let h = self.stats.lock().unwrap(); }} }}"
        );
        let (events, _) = facts_of(&src, "f");
        let mut held_at_stats = vec!["sentinel".to_string()];
        simulate(&events, |ev, held| {
            if let Ev::Acquire { lock, .. } = ev {
                if lock == "stats" {
                    held_at_stats = held.iter().map(|h| h.lock.clone()).collect();
                }
            }
        });
        assert!(held_at_stats.is_empty(), "{held_at_stats:?}");
    }

    #[test]
    fn rwlock_read_counts_only_on_known_lock_fields() {
        let src = "pub struct R { cfg: std::sync::RwLock<u32> }\nimpl R { fn f(&self, file: &mut std::fs::File) { let g = self.cfg.read().unwrap(); let n = file.read(&mut buf); } }";
        let (_, direct) = facts_of(src, "f");
        assert_eq!(direct.iter().collect::<Vec<_>>(), vec!["cfg"]);
    }

    #[test]
    fn blocking_calls_and_wrappers_are_events() {
        let src = format!(
            "{STATE}impl S {{ fn lock(&self) -> std::sync::MutexGuard<'_, u32> {{ self.state.lock().unwrap() }} fn f(&self, stream: &mut std::net::TcpStream) {{ let st = self.lock(); write_frame(stream, b\"x\"); }} }}"
        );
        let (events, _) = facts_of(&src, "f");
        let mut blocked_holding = Vec::new();
        simulate(&events, |ev, held| {
            if let Ev::Blocking { .. } = ev {
                blocked_holding = held.iter().map(|h| h.lock.clone()).collect();
            }
        });
        // The wrapper call is CallLocal, not Acquire — lock-order's
        // fixpoint turns it into an exposure; hold-blocking resolves the
        // bound wrapper call to its direct set. Here we only assert the
        // Blocking event exists.
        assert!(events.iter().any(|e| matches!(e, Ev::Blocking { .. })));
        assert!(blocked_holding.is_empty());
        assert!(events.iter().any(|e| matches!(e, Ev::CallLocal { qname, bound: Some(b), .. } if qname == "S::lock" && b == "st")));
    }

    #[test]
    fn thread_spawn_closures_run_without_held_guards() {
        let src = format!(
            "{STATE}impl S {{ fn f(&self) {{ let g = self.state.lock().unwrap(); std::thread::spawn(move || {{ other.lock().unwrap(); }}); }} }}"
        );
        let (events, direct) = facts_of(&src, "f");
        assert_eq!(direct.iter().collect::<Vec<_>>(), vec!["state"]);
        assert_eq!(
            events.iter().filter(|e| matches!(e, Ev::Acquire { .. })).count(),
            1,
            "spawned closure's acquire is not this thread's"
        );
    }
}
