//! A healthy catalog: unique, snake_case, registered, documented.

pub const SEEDS_TOTAL: &str = "dx_seeds_total";
pub const CORPUS_SIZE: &str = "dx_corpus_size";
