//! Registrations that match the catalog, and a legal event name.

use crate::{events, Registry};

pub fn register(r: &Registry) {
    let _ = r.counter("dx_seeds_total", &[]);
    let _ = r.gauge("dx_corpus_size", &[]);
    events::emit(events::Level::Info, "fleet_manager", "worker_joined", &[]);
}
