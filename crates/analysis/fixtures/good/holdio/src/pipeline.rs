//! Blocking I/O done right: compute under the lock, drop the guard,
//! then block. The single-acquirer `ckpt_io` mutex serializes file
//! writes — blocking under it is the point, and with one acquirer it
//! is exempt by construction.

use std::sync::Mutex;

pub struct State {
    pub pending: usize,
}

pub struct Pipeline {
    state: Mutex<State>,
    ckpt_io: Mutex<()>,
}

impl Pipeline {
    pub fn submit(&self, stream: &mut std::net::TcpStream, doc: &str) {
        let frame = {
            let mut st = self.state.lock().unwrap();
            st.pending += 1;
            render(doc, st.pending)
        };
        write_frame(stream, &frame);
    }

    pub fn drain(&self) {
        let mut st = self.state.lock().unwrap();
        st.pending = 0;
    }

    pub fn checkpoint(&self, path: &str) {
        let pending = {
            let st = self.state.lock().unwrap();
            st.pending
        };
        let _io = self.ckpt_io.lock().unwrap();
        persist(path, pending);
    }
}

fn render(doc: &str, pending: usize) -> String {
    let mut s = doc.to_string();
    s.push(' ');
    s.push_str(&pending.to_string());
    s
}

fn persist(path: &str, pending: usize) {
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(pending.to_string().as_bytes()).unwrap();
}

fn write_frame(_stream: &mut std::net::TcpStream, _frame: &str) {}
