//! Hot-path code the lint must stay quiet on: graceful fallbacks, a
//! justified allow, and every lexer trap near-miss — panics in strings,
//! raw strings, comments, chars vs lifetimes, and pattern brackets.

/// Graceful handling: no unwrap, no indexing.
pub fn handle(results: Option<Vec<u32>>, slots: &[u32], id: usize) -> u32 {
    let first = results.as_ref().and_then(|r| r.first().copied()).unwrap_or(0);
    first + slots.get(id).copied().unwrap_or(0)
}

/// A justified allow is used by the unwrap below, so neither the panic
/// finding nor a stale-allow finding is reported.
pub fn justified() -> u32 {
    let v: Option<u32> = Some(3);
    // analysis: allow(panic): `v` is Some three lines up
    v.unwrap()
}

/// Panic-shaped text the lexer must not mistake for code: `.unwrap()`
/// in strings and raw strings, a `panic!` in a comment, and
/// /* a nested /* block comment */ holding .expect("x") */ too.
pub fn strings() -> String {
    let plain = "x.unwrap() and y.expect(\"boom\") and panic!(\"no\")";
    let raw = r#"v[0] and m.lock() inside a raw string"#;
    let hashed = r##"even r#"nested"# raw strings: slots[9]"##;
    format!("{plain}{raw}{hashed}")
}

/// Lifetimes vs chars, raw identifiers, and brackets in patterns.
pub fn edges<'a>(r#match: &'a [u8; 4]) -> u8 {
    let [a, _b, _c, _d] = r#match;
    let tick = '\'';
    let brace = '[';
    if tick == brace { 0 } else { *a }
}

#[cfg(test)]
mod tests {
    /// Test code may panic freely.
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let arr = [1, 2, 3];
        assert_eq!(arr[2], 3);
    }
}
