//! The wire constants, declared once each: the handshake cap is the
//! tight one and `conn.rs` imports rather than redeclares.

pub const MAX_FRAME: usize = 1 << 28;
pub const HELLO_FRAME_CAP: usize = 1 << 16;

pub struct FrameReader {
    pub cap: usize,
}

impl FrameReader {
    pub fn with_cap(cap: usize) -> Self {
        Self { cap }
    }

    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }
}
