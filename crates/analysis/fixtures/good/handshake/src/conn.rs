//! A safe handshake: the reader starts at the hello cap, only grows
//! after admission, and the version always comes from
//! `PROTOCOL_VERSION`.

use crate::admit::{FrameReader, HELLO_FRAME_CAP, MAX_FRAME};
use crate::proto::PROTOCOL_VERSION;

pub struct Hello {
    pub version: u64,
}

pub struct Conn {
    pub slot: Option<u64>,
}

pub fn handle(conn: &mut Conn, stream: std::net::TcpStream) {
    let mut reader = FrameReader::with_cap(HELLO_FRAME_CAP);
    let hello = Hello { version: PROTOCOL_VERSION };
    if hello.version != PROTOCOL_VERSION {
        reject(&stream);
    }
    if conn.slot.is_some() {
        reader.set_cap(MAX_FRAME);
    }
    serve(reader, stream);
}

fn reject(_stream: &std::net::TcpStream) {}

fn serve(_reader: FrameReader, _stream: std::net::TcpStream) {}
