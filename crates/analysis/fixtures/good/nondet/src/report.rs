//! Deterministic iteration: an ordered map where order escapes, and a
//! hash map that is only ever read point-wise or through
//! order-insensitive terminals.

use std::collections::{BTreeMap, HashMap};

pub struct Report {
    scores: BTreeMap<String, f32>,
    cache: HashMap<String, f32>,
}

impl Report {
    pub fn rows(&self) -> Vec<String> {
        self.scores.iter().map(|(k, v)| format!("{k}={v}")).collect()
    }

    pub fn hot(&self) -> usize {
        self.cache.values().filter(|v| **v > 0.5).count()
    }

    pub fn lookup(&self, key: &str) -> Option<f32> {
        self.cache.get(key).copied()
    }
}
