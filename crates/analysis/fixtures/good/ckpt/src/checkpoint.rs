//! A symmetric codec: every key `save` writes, `load` reads.

use crate::json::{build, field_usize, Json};

pub struct State {
    pub epochs: usize,
    pub budget: usize,
}

pub fn save(state: &State) -> Json {
    build::obj(vec![
        ("version", build::int(1)),
        ("epochs", build::int(state.epochs)),
        ("budget", build::int(state.budget)),
    ])
}

pub fn load(doc: &Json) -> State {
    State { epochs: field_usize(doc, "epochs"), budget: field_usize(doc, "budget") }
}
