//! A drift-free spec: every shadowed fingerprint field is validated,
//! and only real fingerprint fields are referenced.

use crate::proto::Fingerprint;

pub struct CampaignSpec {
    pub models: String,
    pub seed: u64,
}

impl CampaignSpec {
    pub fn validate(&self, fp: &Fingerprint) -> Result<(), String> {
        if self.models != fp.models {
            return Err("model zoo mismatch".to_string());
        }
        if self.seed != fp.seed {
            return Err("seed mismatch".to_string());
        }
        Ok(())
    }
}
