//! A crate root carrying the required attribute.

#![forbid(unsafe_code)]

pub fn noop() {}
