//! The same two locks as the bad mesh, taken in one global order
//! everywhere — no cycle, no reentrancy.

use std::sync::Mutex;

pub struct Mesh {
    corpus: Mutex<Vec<u32>>,
    stats: Mutex<u32>,
}

impl Mesh {
    pub fn absorb(&self) {
        let corpus = &self.corpus;
        let stats = &self.stats;
        let c = corpus.lock().unwrap();
        let s = stats.lock().unwrap();
        drop(s);
        drop(c);
    }

    /// Same order as `absorb`; the earlier guard is dropped before the
    /// second acquisition, so not even an order edge is recorded.
    pub fn report(&self) {
        let corpus = &self.corpus;
        let stats = &self.stats;
        let c = corpus.lock().unwrap();
        drop(c);
        let s = stats.lock().unwrap();
        drop(s);
    }
}
