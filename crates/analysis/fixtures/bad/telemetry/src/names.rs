//! Seeded catalog violations: a duplicate entry, an illegal name, and
//! a dead entry nothing registers.

pub const SEEDS_TOTAL: &str = "dx_seeds_total";
pub const SEEDS_TOTAL_AGAIN: &str = "dx_seeds_total";
pub const BAD_CASE: &str = "dx_BadName";
pub const DEAD: &str = "dx_dead_metric";
