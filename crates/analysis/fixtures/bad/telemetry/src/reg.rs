//! Seeded registration violations: a metric the catalog does not know
//! and an event with an illegal component name.

use crate::{events, Registry};

pub fn register(r: &Registry) {
    let _ = r.counter("dx_seeds_total", &[]);
    let _ = r.counter("dx_rogue_total", &[]);
    events::emit(events::Level::Info, "Fleet-Manager", "worker_joined", &[]);
}
