//! Seeded panic-path and allow-hygiene violations on a hot-plane group.

/// Every panic flavor the lint covers.
pub fn handle(results: Option<Vec<u32>>, slots: &[u32], id: usize) -> u32 {
    let rs = results.unwrap();
    let first = rs.first().copied().expect("results are never empty");
    if id > slots.len() {
        panic!("slot out of range");
    }
    first + slots[id]
}

/// A stale allow: the line below it panics nowhere.
pub fn quiet() -> u32 {
    // analysis: allow(panic): left over from a removed unwrap
    7
}

/// An allow with no justification does not suppress its finding.
pub fn unjustified(v: Option<u32>) -> u32 {
    // analysis: allow(panic)
    v.unwrap()
}

/// An allow naming a check that does not exist.
pub fn misspelled() -> u32 {
    // analysis: allow(panics): the check id is `panic`, not `panics`
    11
}
