//! Seeded frame-constant drift: the admission module grew its own
//! copies of the wire constants and they no longer agree with
//! `conn.rs`.

pub const MAX_FRAME: usize = 1 << 28;
pub const HELLO_FRAME_CAP: usize = 1 << 20;

pub struct FrameReader {
    pub cap: usize,
}

impl FrameReader {
    pub fn with_cap(cap: usize) -> Self {
        Self { cap }
    }

    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }
}
