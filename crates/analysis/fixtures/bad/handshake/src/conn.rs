//! Seeded handshake violations: the reader opens at the big cap, the
//! cap is raised without an admission guard, and the hello version is
//! hardcoded.

use crate::admit::FrameReader;

pub const MAX_FRAME: usize = 1 << 28;
pub const HELLO_FRAME_CAP: usize = 1 << 16;

pub struct Hello {
    pub version: u64,
}

pub fn handle(stream: std::net::TcpStream) {
    let mut reader = FrameReader::with_cap(MAX_FRAME);
    let hello = Hello { version: 7 };
    if hello.version == 6 {
        reject(&stream);
    }
    reader.set_cap(MAX_FRAME);
    serve(reader, stream);
}

fn reject(_stream: &std::net::TcpStream) {}

fn serve(_reader: FrameReader, _stream: std::net::TcpStream) {}
