//! Seeded checkpoint-schema violations: `save` writes a key `load`
//! never reads, and `load` reads a key `save` never writes.

use crate::json::{build, field_usize, Json};

pub struct State {
    pub epochs: usize,
    pub budget: usize,
}

pub fn save(state: &State) -> Json {
    build::obj(vec![
        ("version", build::int(1)),
        ("epochs", build::int(state.epochs)),
        ("orphan_key", build::int(7)),
    ])
}

pub fn load(doc: &Json) -> State {
    State {
        epochs: field_usize(doc, "epochs"),
        budget: doc.get("ghost_key").map_or(0, Json::as_usize),
    }
}
