//! Seeded nondeterministic iteration: hash-map order escaping into a
//! collected row set and a rendered report.

use std::collections::HashMap;

pub struct Report {
    scores: HashMap<String, f32>,
}

impl Report {
    pub fn rows(&self) -> Vec<String> {
        self.scores.iter().map(|(k, v)| format!("{k}={v}")).collect()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.scores.iter() {
            out.push_str(&format!("{k}={v}\n"));
        }
        out
    }
}
