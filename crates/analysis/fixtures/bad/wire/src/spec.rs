//! Seeded spec-drift violations: a second `PROTOCOL_VERSION`, a
//! shadowed fingerprint field `validate` forgot, and a reference to a
//! fingerprint field that no longer exists.

use crate::proto::Fingerprint;

pub const PROTOCOL_VERSION: u32 = 9;

pub struct CampaignSpec {
    pub models: String,
    pub seed: u64,
}

impl CampaignSpec {
    pub fn validate(&self, fp: &Fingerprint) -> Result<(), String> {
        if self.models != fp.models {
            return Err("model zoo mismatch".to_string());
        }
        if fp.arch.is_empty() {
            return Err("no architecture".to_string());
        }
        Ok(())
    }
}
