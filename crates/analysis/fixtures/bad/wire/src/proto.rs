//! Seeded protocol-drift violations: a `Msg` variant with no decode
//! arm and a `Fingerprint` field the reader lost.

pub const PROTOCOL_VERSION: u32 = 9;

pub enum Msg {
    Hello,
    Results,
    Shutdown,
}

pub struct Fingerprint {
    pub models: String,
    pub seed: u64,
}

impl Msg {
    pub fn to_json(&self) -> String {
        match self {
            Msg::Hello => "{\"t\":\"hello\"}".to_string(),
            Msg::Results => "{\"t\":\"results\"}".to_string(),
            Msg::Shutdown => "{\"t\":\"shutdown\"}".to_string(),
        }
    }

    pub fn from_json(text: &str) -> Option<Self> {
        match text {
            "hello" => Some(Msg::Hello),
            "results" => Some(Msg::Results),
            _ => None,
        }
    }
}

impl Fingerprint {
    pub fn to_json(&self) -> String {
        obj(&[("models", self.models.clone()), ("seed", self.seed.to_string())])
    }

    pub fn from_json(doc: &str) -> Self {
        Self { models: field(doc, "models"), seed: 0 }
    }
}

fn obj(_pairs: &[(&str, String)]) -> String {
    String::new()
}

fn field(_doc: &str, _key: &str) -> String {
    String::new()
}
