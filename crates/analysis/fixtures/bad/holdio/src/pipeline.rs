//! Seeded blocking-under-lock violations: frame writes, sleeps and
//! (transitive) file I/O while the contended pipeline state lock is
//! held.

use std::sync::Mutex;

pub struct State {
    pub pending: usize,
}

pub struct Pipeline {
    state: Mutex<State>,
}

impl Pipeline {
    pub fn submit(&self, stream: &mut std::net::TcpStream, doc: &str) {
        let mut st = self.state.lock().unwrap();
        st.pending += 1;
        write_frame(stream, doc);
    }

    pub fn drain(&self) {
        let mut st = self.state.lock().unwrap();
        st.pending = 0;
    }

    pub fn throttle(&self) {
        let st = self.state.lock().unwrap();
        if st.pending > 64 {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    pub fn checkpoint(&self, path: &str) {
        let st = self.state.lock().unwrap();
        persist(path, st.pending);
    }
}

fn persist(path: &str, pending: usize) {
    let mut f = std::fs::File::create(path).unwrap();
    f.write_all(pending.to_string().as_bytes()).unwrap();
}

fn write_frame(_stream: &mut std::net::TcpStream, _doc: &str) {}
