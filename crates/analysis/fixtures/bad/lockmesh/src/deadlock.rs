//! Seeded lock-order violations: a two-lock cycle and a reentrant
//! acquisition. Never compiled — lexed by the fixture-regression test.

use std::sync::Mutex;

pub struct Mesh {
    corpus: Mutex<Vec<u32>>,
    stats: Mutex<u32>,
    journal: Mutex<String>,
}

impl Mesh {
    /// Takes `corpus` then `stats` — one half of the cycle.
    pub fn absorb(&self) {
        let corpus = &self.corpus;
        let stats = &self.stats;
        let c = corpus.lock().unwrap();
        let s = stats.lock().unwrap();
        drop(s);
        drop(c);
    }

    /// Takes `stats` then `corpus` — the opposite order.
    pub fn report(&self) {
        let corpus = &self.corpus;
        let stats = &self.stats;
        let s = stats.lock().unwrap();
        let c = corpus.lock().unwrap();
        drop(c);
        drop(s);
    }

    /// Re-acquires `journal` while already holding it.
    pub fn append_twice(&self) {
        let journal = &self.journal;
        let first = journal.lock().unwrap();
        let second = journal.lock().unwrap();
        drop(second);
        drop(first);
    }
}
