//! Fixture regression: the `bad/` tree must surface exactly the
//! findings in `fixtures/expected.txt` (every seeded violation, for
//! every check, and nothing else), and the `good/` tree — clean code
//! plus every lexer trap — must produce zero findings.
//!
//! CI runs the same comparison from the workspace root via
//! `cargo run -p dx-analysis -- --expect crates/analysis/fixtures/expected.txt`,
//! so `expected.txt` stores workspace-root-relative paths; this test
//! normalizes its absolute scan root back to that prefix.

use std::collections::BTreeSet;
use std::path::Path;

use dx_analysis::{run_all, Workspace};

fn scan(tree: &str) -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(tree);
    let ws = Workspace::load(&root).expect("fixture tree loads");
    let abs_prefix = format!("{}/fixtures/", Path::new(env!("CARGO_MANIFEST_DIR")).display());
    run_all(&ws)
        .iter()
        .map(|f| f.to_string().replace(&abs_prefix, "crates/analysis/fixtures/"))
        .collect()
}

#[test]
fn bad_fixtures_surface_every_seeded_violation() {
    let got: BTreeSet<String> = scan("bad").into_iter().collect();
    let expected = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join("expected.txt"),
    )
    .expect("expected.txt exists");
    let want: BTreeSet<String> =
        expected.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect();
    let missing: Vec<_> = want.difference(&got).collect();
    let unexpected: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "fixture drift\nmissing: {missing:#?}\nunexpected: {unexpected:#?}"
    );
    // Every check id must appear: a regression that silences one whole
    // check while the others still fire should not pass.
    for check in [
        "lock-order",
        "hold-blocking",
        "nondet-order",
        "wire-compat",
        "panic",
        "proto-drift",
        "telemetry-name",
        "ckpt-schema",
        "crate-attrs",
        "allow",
    ] {
        assert!(
            got.iter().any(|l| l.contains(&format!("[{check}]"))),
            "no `{check}` finding in the bad fixtures"
        );
    }
}

#[test]
fn good_fixtures_are_clean() {
    let got = scan("good");
    assert!(got.is_empty(), "good fixtures must be finding-free, got: {got:#?}");
}
