//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! collection strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! Semantics differences from upstream, deliberate for an offline shim:
//! inputs are sampled from a per-case deterministic RNG rather than a
//! persisted failure file, and there is **no shrinking** — a failing case
//! reports the case number and message only. Every run samples the same
//! cases, so failures reproduce exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case execution: configuration, runner, error type.
pub mod test_runner {
    use rand::SeedableRng as _;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed property, carrying the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    /// Runs a property over `cases` deterministically-seeded inputs.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Runs the property once per case, panicking on the first failure.
        pub fn run<F>(&mut self, f: &mut F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let mut rng = TestRng::seed_from_u64(0xd09_7e57_0000 + u64::from(case));
                if let Err(e) = f(&mut rng) {
                    panic!("proptest case {case}/{} failed: {}", self.config.cases, e.0);
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A recipe for sampling values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A length specification for [`vec`](fn@vec): a fixed `usize` or `lo..hi`.
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)` bounds on the length.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// The strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy for `Vec`s of `element` samples with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty length range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr); ) => {};
    ( cfg = ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(&mut |prop_rng: &mut $crate::test_runner::TestRng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), prop_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition, failing the current case (no shrinking) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..255, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn prop_map_applies(d in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(&mut |_rng| {
            crate::prop_assert!(false, "always fails");
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
