//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! in-tree shim provides exactly the API surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — high-quality,
//! fast, and fully deterministic from a `u64` seed. The stream is **not**
//! bit-compatible with upstream `rand`'s `StdRng` (ChaCha12); everything in
//! this workspace only relies on determinism given a seed, never on a
//! specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one value of `T` from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $bits:expr, $denom:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / $denom;
                let v = self.start + unit * (self.end - self.start);
                // `unit < 1` but `start + unit * span` can still round up to
                // exactly `end`; keep the documented half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}

// 24 / 53 mantissa bits keep `unit` strictly below 1, so samples stay in
// `[lo, hi)` exactly as upstream guarantees.
float_sample_range!(f32 => 24, 16_777_216.0, f64 => 53, 9_007_199_254_740_992.0);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw generator state — four xoshiro256++ words.
        ///
        /// This is an extension over upstream `rand` (which exposes state
        /// only through serde); campaign checkpoints persist it so a
        /// resumed run continues the exact stream. A registry swap to the
        /// real crate would replace these two methods with a serde shim.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously exported state.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: std::array::from_fn(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, SeedableRng as _};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let left: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let right: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(left, right);
    }

    #[test]
    fn float_ranges_are_half_open() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = r.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
        }
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn tiny_float_ranges_stay_below_end() {
        // With a 1-ulp span, `start + unit * span` rounds up to `end` about
        // half the time before clamping; the contract is half-open.
        let mut r = StdRng::seed_from_u64(123);
        let lo = 1.0f32;
        let hi = lo.next_up();
        for _ in 0..1000 {
            let v: f32 = r.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "{v} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive ranges reach the upper bound.
        let mut top = false;
        for _ in 0..1000 {
            if r.gen_range(0usize..=4) == 4 {
                top = true;
            }
        }
        assert!(top);
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(5);
        for _ in 0..17 {
            let _: u64 = a.gen_range(0..u64::MAX);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _: usize = r.gen_range(3usize..3);
    }
}
