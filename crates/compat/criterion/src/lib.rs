//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the small API the workspace's `micro_engine` bench uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`]
//! (both forms) and [`criterion_main!`]. Instead of criterion's full
//! statistical pipeline it runs a short warmup, then times `sample_size`
//! samples and prints min/mean/max per iteration — enough to eyeball
//! regressions without any external dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warmup_iters: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20, warmup_iters: 3 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        for _ in 0..self.warmup_iters {
            f(&mut b);
        }
        b.samples.clear();
        while b.samples.len() < self.sample_size {
            f(&mut b);
        }
        let per_iter: Vec<f64> =
            b.samples.iter().map(|d| d.as_secs_f64() / b.iters_per_sample as f64).collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{name:<40} min {:>10} mean {:>10} max {:>10} ({} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            per_iter.len()
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Times closures handed to [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times one sample of `f`, recording its duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
        self.iters_per_sample = 1;
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 3 warmup + 3 timed samples.
        assert_eq!(runs, 6);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
