//! Quickstart: find an input that makes the three MNIST LeNets disagree.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p dx-examples --bin quickstart
//! ```
//!
//! The first run trains the three LeNets on the synthetic digit dataset
//! (cached under `.dx-cache/` afterwards), then grows difference-inducing
//! inputs from test-set seeds under the lighting constraint and prints the
//! first one as ASCII art.

use deepxplore::constraints::Constraint;
use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use dx_coverage::CoverageConfig;
use dx_models::{DatasetKind, Scale, Zoo};
use dx_nn::util::gather_rows;
use dx_tensor::Image;

fn main() {
    let mut zoo = Zoo::at_scale(Scale::Test);
    println!("== DeepXplore quickstart: MNIST LeNet trio ==\n");
    for id in ["MNI_C1", "MNI_C2", "MNI_C3"] {
        println!("{id}: test accuracy {:.2}%", 100.0 * zoo.accuracy(id));
    }
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();

    let mut gen = Generator::new(
        models,
        TaskKind::Classification,
        Hyperparams { max_iters: 40, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::scaled(0.25),
        2024,
    );
    let seeds = gather_rows(&ds.test_x, &(0..50).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    println!(
        "\ngenerated {} difference-inducing inputs from {} seeds \
         ({} iterations, {:.1?}); neuron coverage {:.1}%",
        result.stats.differences_found,
        result.stats.seeds_tried,
        result.stats.total_iterations,
        result.stats.elapsed,
        100.0 * gen.mean_coverage(),
    );

    let Some(test) = result.tests.first() else {
        println!("no differences found — try more seeds");
        return;
    };
    let seed_img =
        Image::from_tensor(gather_rows(&ds.test_x, &[test.seed_index]).reshape(&[1, 28, 28]));
    let gen_img = Image::from_tensor(test.input.reshape(&[1, 28, 28]));
    println!(
        "\nseed #{} (all models agree)        generated (models disagree: {:?})",
        test.seed_index, test.predictions
    );
    for (a, b) in seed_img.to_ascii().lines().zip(gen_img.to_ascii().lines()) {
        println!("{a}    {b}");
    }
    println!(
        "The generated image was found in {} gradient-ascent steps under the lighting constraint.",
        test.iterations
    );
}
