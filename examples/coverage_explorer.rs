//! Neuron coverage vs. traditional code coverage, interactively explored
//! (the Table 6 / Figure 9 story at example scale).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p dx-examples --bin coverage_explorer
//! ```

use deepxplore::baselines::random_selection;
use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use deepxplore::Constraint;
use dx_coverage::multisection::{MultisectionTracker, NeuronProfile};
use dx_coverage::opcov::OpCoverage;
use dx_coverage::{CoverageConfig, CoverageTracker, Granularity};
use dx_models::{DatasetKind, Scale, Zoo};
use dx_nn::util::gather_rows;

fn main() {
    let mut zoo = Zoo::at_scale(Scale::Test);
    println!("== Coverage explorer: LeNet-5 on synthetic MNIST ==\n");
    let net = zoo.model("MNI_C3");
    let ds = zoo.dataset(DatasetKind::Mnist).clone();

    // 1. The paper's Table 6 phenomenon: one input = 100% operator coverage.
    let mut opcov = OpCoverage::for_network(&net);
    println!(
        "operator (\"line\") coverage before any input: {:.1}% of {} kernel units",
        100.0 * opcov.coverage(),
        opcov.total()
    );
    opcov.record_forward();
    println!("operator coverage after ONE input:           {:.1}%", 100.0 * opcov.coverage());

    // 2. Neuron coverage of the same single input, then of 10 random ones.
    let cfg = CoverageConfig::scaled(0.75);
    let mut tracker = CoverageTracker::for_network(&net, cfg);
    let one = gather_rows(&ds.test_x, &[0]);
    tracker.update(&net.forward(&one));
    println!(
        "\nneuron coverage (t = 0.75) after one input:  {:.1}% of {} neurons",
        100.0 * tracker.coverage(),
        tracker.total()
    );
    let ten = random_selection(&ds.test_x, 10, 42);
    for i in 0..10 {
        tracker.update(&net.forward(&gather_rows(&ten, &[i])));
    }
    println!("neuron coverage after 10 random inputs:      {:.1}%", 100.0 * tracker.coverage());

    // 3. Coverage at several thresholds: random seeds vs DeepXplore tests.
    println!("\nthreshold | random x20 | deepxplore x20 seeds");
    for &t in &[0.0, 0.25, 0.5, 0.75] {
        let cfg = CoverageConfig::scaled(t);
        let mut rand_tracker = CoverageTracker::for_network(&net, cfg);
        let pool = random_selection(&ds.test_x, 20, 7);
        for i in 0..20 {
            rand_tracker.update(&net.forward(&gather_rows(&pool, &[i])));
        }
        let models = zoo.trio(DatasetKind::Mnist);
        let mut gen = Generator::new(
            models,
            TaskKind::Classification,
            Hyperparams::image_defaults(),
            Constraint::Lighting,
            cfg,
            9,
        );
        let seeds = gather_rows(&ds.test_x, &(0..20).collect::<Vec<_>>());
        let _ = gen.run(&seeds);
        println!(
            "   {t:>4.2}   |   {:>5.1}%   |   {:>5.1}%",
            100.0 * rand_tracker.coverage(),
            100.0 * gen.coverage()[2], // LeNet-5 is the third model.
        );
    }
    // 4. The finer-grained follow-on metric: k-multisection coverage
    // (DeepGauge), built on this paper's neuron coverage.
    let mut profile = NeuronProfile::new(&net, Granularity::ChannelMean);
    for i in 0..ds.train_len().min(150) {
        profile.observe(&net.forward(&gather_rows(&ds.train_x, &[i])));
    }
    let mut ms = MultisectionTracker::new(profile, 10);
    for i in 0..ds.test_len().min(50) {
        ms.update(&net.forward(&gather_rows(&ds.test_x, &[i])));
    }
    println!(
        "\nk-multisection coverage (k = 10, 50 test inputs): {:.1}% of neuron-sections",
        100.0 * ms.coverage()
    );

    println!("\nNeuron coverage stays far from 100% while operator coverage saturates");
    println!("after a single input — the motivation for the neuron-coverage metric.");
}
