//! The Figure 1 scenario: a self-driving model that steers correctly on a
//! frame but turns the wrong way on a slightly darker version of it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p dx-examples --bin driving_lighting
//! ```
//!
//! Trains (or loads) the three DAVE steering regressors, grows
//! difference-inducing frames under the lighting constraint, prints the
//! steering disagreements and writes seed/generated frame pairs as PGM
//! images under `dx-out/`.

use deepxplore::diff::{direction, Prediction};
use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use deepxplore::Constraint;
use dx_coverage::CoverageConfig;
use dx_datasets::driving::STEER_DIRECTION_THRESHOLD;
use dx_models::{DatasetKind, Scale, Zoo};
use dx_nn::util::gather_rows;
use dx_tensor::Image;

fn main() {
    let mut zoo = Zoo::at_scale(Scale::Test);
    println!("== DeepXplore: DAVE self-driving disagreements under lighting ==\n");
    for id in ["DRV_C1", "DRV_C2", "DRV_C3"] {
        println!("{id}: 1-MSE {:.4}", zoo.accuracy(id));
    }
    let models = zoo.trio(DatasetKind::Driving);
    let ds = zoo.dataset(DatasetKind::Driving).clone();

    let mut gen = Generator::new(
        models,
        TaskKind::Regression { direction_threshold: STEER_DIRECTION_THRESHOLD },
        Hyperparams { max_iters: 60, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::scaled(0.25),
        31337,
    );
    let seeds = gather_rows(&ds.test_x, &(0..40).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    println!(
        "\nfound {} steering disagreements from {} seeds in {:.1?}\n",
        result.stats.differences_found, result.stats.seeds_tried, result.stats.elapsed
    );

    let out_dir = std::path::Path::new("dx-out");
    std::fs::create_dir_all(out_dir).expect("creating dx-out/");
    for (k, test) in result.tests.iter().take(4).enumerate() {
        let angles: Vec<f32> = test
            .predictions
            .iter()
            .map(|p| match p {
                Prediction::Value(v) => *v,
                Prediction::Class(_) => unreachable!("regression task"),
            })
            .collect();
        println!(
            "case {k}: seed #{:<3} steering {:?} -> directions {:?}",
            test.seed_index,
            angles.iter().map(|a| (a * 100.0).round() / 100.0).collect::<Vec<_>>(),
            angles.iter().map(|&a| direction(a, STEER_DIRECTION_THRESHOLD)).collect::<Vec<_>>()
        );
        let seed_img =
            Image::from_tensor(gather_rows(&ds.test_x, &[test.seed_index]).reshape(&[1, 32, 64]));
        let gen_img = Image::from_tensor(test.input.reshape(&[1, 32, 64]));
        let seed_path = out_dir.join(format!("driving_{k}_seed.pgm"));
        let gen_path = out_dir.join(format!("driving_{k}_diff.pgm"));
        seed_img.save(&seed_path).expect("writing seed frame");
        gen_img.save(&gen_path).expect("writing generated frame");
        println!("         frames: {} / {}", seed_path.display(), gen_path.display());
    }
    if result.tests.is_empty() {
        println!("no disagreements found — try more seeds or a larger step");
    }
}
