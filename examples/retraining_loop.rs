//! Closing the loop: retrain a model on its own DeepXplore-generated
//! failures, auto-labelled by majority vote (the Figure 10 experiment at
//! example scale).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p dx-examples --bin retraining_loop
//! ```

use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use deepxplore::Constraint;
use dx_apps::augment::{majority_vote, retrain_with_eval};
use dx_coverage::CoverageConfig;
use dx_models::{DatasetKind, Scale, Zoo};
use dx_nn::util::gather_rows;
use dx_tensor::Tensor;

fn main() {
    let mut zoo = Zoo::at_scale(Scale::Test);
    println!("== Retraining with DeepXplore-generated tests (majority-vote labels) ==\n");
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let labels = ds.train_labels.classes().to_vec();
    let test_labels = ds.test_labels.classes().to_vec();

    // Generate error-inducing inputs for the trio.
    let mut gen = Generator::new(
        models.clone(),
        TaskKind::Classification,
        Hyperparams { max_iters: 40, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::scaled(0.25),
        77,
    );
    let seeds = gather_rows(&ds.test_x, &(0..60).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    println!("generated {} error-inducing inputs", result.stats.differences_found);

    // Auto-label them by majority vote — no human in the loop.
    let extra: Vec<(Tensor, usize)> = result
        .tests
        .iter()
        .filter_map(|t| majority_vote(&models, &t.input).map(|l| (t.input.clone(), l)))
        .collect();
    println!("majority vote labelled {} of them (ties dropped)\n", extra.len());

    // Retrain LeNet-1 with the augmented training set.
    let mut net = zoo.model("MNI_C1");
    let outcome =
        retrain_with_eval(&mut net, &ds.train_x, &labels, &extra, &ds.test_x, &test_labels, 5, 123);
    println!("LeNet-1 accuracy before retraining: {:.2}%", 100.0 * outcome.initial_accuracy);
    for (e, acc) in outcome.epoch_accuracy.iter().enumerate() {
        println!("  after epoch {}: {:.2}%", e + 1, 100.0 * acc);
    }
    println!(
        "\nimprovement: {:+.2} percentage points (best {:.2}%)",
        100.0 * outcome.improvement(),
        100.0 * outcome.best()
    );
}
